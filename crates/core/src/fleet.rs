//! Fleet coordination: the job table and lease state machine behind
//! `repro fleet`.
//!
//! A campaign at characterization-as-a-service scale (ROADMAP item 1)
//! outgrows one process: modules are sharded across worker processes,
//! and workers die — cleanly, or with `kill -9` mid-job. This module
//! is the *pure* core of the coordinator: a [`JobTable`] that hands
//! out work under **leases** and guarantees that every module commits
//! **exactly one** result no matter how many workers raced on it.
//!
//! # The lease state machine (DESIGN.md §11)
//!
//! ```text
//! Pending ──grant──▶ Granted ──heartbeat ok──▶ Heartbeating ─┐
//!    ▲                  │                          │     ▲   │ heartbeat ok
//!    │                  │ misses ≥ threshold       │     └───┘
//!    │                  ▼                          ▼
//!    │               Suspect ◀──────── misses ≥ threshold
//!    │                  │
//!    │   deadline passes│(tick)
//!    ├──◀── Expired ◀───┘         (backoff per RetryPolicy, attempts += 0
//!    │                             — the grant already counted)
//!    └── re-grant = *re-dispatch* (generation += 1)
//! ```
//!
//! Terminal phases are `Committed` (a result landed from the lease
//! that currently owns the job) and `Quarantined` (attempt budget
//! exhausted, or a non-transient worker error).
//!
//! # The at-most-once commit rule
//!
//! Every grant mints a fresh `(lease_id, generation)`. A result may
//! commit **only** from the lease that currently owns the job: a
//! zombie worker's late reply carries a stale generation and is
//! counted as [`CommitOutcome::Stale`]; a repeat of an
//! already-committed module is [`CommitOutcome::Duplicate`]. Either
//! way the committed result never changes — re-dispatch plus this
//! rule is what makes `kill -9` invisible in the final report.
//!
//! # Crash-resume
//!
//! [`JobTable::save_checkpoint`] persists committed and quarantined
//! entries (plus attempt counts) through the same
//! versioned-JSON/atomic-rename machinery as campaign checkpoints.
//! In-flight leases are deliberately *not* persisted: a restarted
//! coordinator re-runs exactly the work that was in flight, and
//! nothing else.
//!
//! All methods take the current time as a parameter (`now_ms`), so
//! the whole state machine is deterministic under test.

use crate::campaign::RetryPolicy;
use crate::error::CharError;
use rh_obs::names;
use serde::{Deserialize, Serialize, Value};
use std::path::{Path, PathBuf};

/// Current fleet checkpoint schema version.
const FLEET_CHECKPOINT_VERSION: u32 = 1;

/// Liveness of an active lease, driven by heartbeats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeaseState {
    /// Granted; no heartbeat observed yet.
    Granted,
    /// At least one heartbeat has renewed the lease.
    Heartbeating,
    /// Enough consecutive heartbeats missed that the worker is
    /// presumed dead; the lease still expires only at its deadline.
    Suspect,
}

/// One active lease.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lease {
    /// Unique across the whole fleet run.
    pub lease_id: u64,
    /// 1-based grant counter for this job; the commit key.
    pub generation: u32,
    /// The worker the job was dispatched to.
    pub worker: String,
    /// Absolute coordinator-clock deadline (ms).
    pub deadline_ms: u64,
    /// Liveness state.
    pub state: LeaseState,
    /// Consecutive missed heartbeats.
    pub missed_heartbeats: u32,
}

/// Where one job is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum JobPhase {
    /// Ready to grant once `now >= not_before_ms`.
    Pending {
        /// Retry backoff gate (0 = immediately ready).
        not_before_ms: u64,
    },
    /// Owned by an active lease.
    Leased(Lease),
    /// A result committed; `generation` records the winning lease.
    Committed {
        /// Generation of the lease whose result won.
        generation: u32,
        /// The committed result payload.
        result: Value,
    },
    /// Attempt budget exhausted or non-transient error.
    Quarantined {
        /// Grants consumed before giving up.
        attempts: u32,
        /// Final error, rendered.
        error: String,
    },
}

/// One job: a module plus its dispatch history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Job {
    module_id: String,
    /// Opaque work description; the worker interprets it.
    payload: Value,
    /// Leases granted so far.
    attempts: u32,
    phase: JobPhase,
    /// One rendered error per failed attempt.
    errors: Vec<String>,
    /// Replay token minted when the result committed (see
    /// [`ReplayToken`]); `None` until then, and forever for payloads
    /// that do not describe a replayable workload.
    token: Option<String>,
}

/// The wire form of one job grant, POSTed to a worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobGrant {
    /// Stable module identifier (the commit key for reports).
    pub module_id: String,
    /// Opaque work description; the worker interprets it.
    pub payload: Value,
    /// Fleet-unique lease identifier.
    pub lease_id: u64,
    /// Grant generation for this module.
    pub generation: u32,
    /// Advisory lease duration: how long the worker has before the
    /// coordinator presumes it dead.
    pub lease_ms: u64,
}

/// What [`JobTable::commit`] decided about an arriving result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitOutcome {
    /// The result is the module's one committed result.
    Committed,
    /// The module already committed; this reply changes nothing.
    Duplicate,
    /// The reply's lease no longer owns the job (expired and
    /// re-dispatched, or never known); it is discarded.
    Stale,
}

/// What [`JobTable::fail`] decided about a reported failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailOutcome {
    /// The job went back to pending behind a backoff gate.
    Retrying {
        /// Scheduled backoff before the job is grantable again (ms).
        backoff_ms: u64,
    },
    /// Attempt budget exhausted or the error was not transient.
    Quarantined,
    /// The reporting lease no longer owns the job; ignored.
    Stale,
}

/// One lease expired by [`JobTable::tick`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExpiredLease {
    /// The job that lost its lease.
    pub module_id: String,
    /// The expired lease id.
    pub lease_id: u64,
    /// The worker that held it.
    pub worker: String,
    /// Whether the job was quarantined instead of re-queued.
    pub quarantined: bool,
}

/// Per-module line in a [`FleetReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetModuleOutcome {
    /// Stable module identifier.
    pub id: String,
    /// `"committed"` or `"quarantined"`.
    pub status: String,
    /// Grants consumed.
    pub attempts: u32,
    /// One rendered error per failed attempt.
    pub errors: Vec<String>,
    /// Deterministic replay token for committed results (see
    /// [`ReplayToken`]); `None` for quarantined modules or payloads
    /// that do not describe a replayable workload.
    pub replay_token: Option<String>,
}

/// FNV-1a 64-bit hash — the result fingerprint inside a
/// [`ReplayToken`]. Stable, dependency-free, and fast enough to hash
/// every committed result at commit time.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A deterministic replay token, stamped on every committed job
/// result: everything needed to re-execute the job single-process
/// (`repro analyze replay <token>`) and diff the result bit-for-bit.
///
/// Wire form (10 `:`-separated fields, first is the literal version
/// tag):
///
/// ```text
/// rtv1:<workload>:<mfr>:<index>:<seed:016x>:<scale>:<net-plan>:<net-seed:016x>:<result-hash:016x>:<trace:032x>
/// ```
///
/// `workload`/`mfr`/`index`/`seed`/`scale` identify the module profile
/// and command seed; `net-plan`/`net-seed` pin the network-fault
/// environment the result survived (informational for replay — the
/// single-process re-execution runs fault-free and must still match);
/// `result-hash` is [`fnv1a64`] over the committed result's compact
/// JSON; `trace` links the token back to the distributed trace that
/// produced it (0 for local runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayToken {
    /// Worker workload name (e.g. `row_variation`).
    pub workload: String,
    /// Manufacturer debug name (e.g. `MfrA`).
    pub mfr: String,
    /// Module index within the manufacturer.
    pub index: u64,
    /// Command seed the job ran under.
    pub seed: u64,
    /// Scale debug name (e.g. `Smoke`).
    pub scale: String,
    /// Armed net-fault plan name (`none` when unfaulted).
    pub net_plan: String,
    /// Net-fault plan seed (0 when unfaulted).
    pub net_seed: u64,
    /// [`fnv1a64`] of the committed result's compact JSON.
    pub result_hash: u64,
    /// Trace the job executed under (0 = untraced/local).
    pub trace_id: u128,
}

impl ReplayToken {
    /// Parses the wire form back into a token.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed field.
    pub fn parse(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.trim().split(':').collect();
        if parts.len() != 10 {
            return Err(format!("expected 10 ':'-separated fields, got {}", parts.len()));
        }
        if parts[0] != "rtv1" {
            return Err(format!("unknown token version '{}' (expected rtv1)", parts[0]));
        }
        let hex = |what: &str, s: &str| -> Result<u128, String> {
            u128::from_str_radix(s, 16).map_err(|e| format!("bad {what} '{s}': {e}"))
        };
        let index: u64 =
            parts[3].parse().map_err(|e| format!("bad index '{}': {e}", parts[3]))?;
        Ok(Self {
            workload: parts[1].to_string(),
            mfr: parts[2].to_string(),
            index,
            seed: hex("seed", parts[4])? as u64,
            scale: parts[5].to_string(),
            net_plan: parts[6].to_string(),
            net_seed: hex("net seed", parts[7])? as u64,
            result_hash: hex("result hash", parts[8])? as u64,
            trace_id: hex("trace id", parts[9])?,
        })
    }
}

/// Mints a [`ReplayToken`] for a committed `(payload, result)` pair,
/// or `None` when the payload does not carry the full replayable
/// profile (`workload`/`mfr`/`index`/`seed`/`scale`) — synthetic test
/// payloads stay tokenless rather than minting garbage.
#[must_use]
pub fn mint_replay_token(
    payload: &Value,
    result: &Value,
    net_plan: &str,
    net_seed: u64,
    trace_id: u128,
) -> Option<String> {
    let token = ReplayToken {
        workload: payload.field("workload").as_str()?.to_string(),
        mfr: payload.field("mfr").as_str()?.to_string(),
        index: payload.field("index").as_u64()?,
        seed: payload.field("seed").as_u64()?,
        scale: payload.field("scale").as_str()?.to_string(),
        net_plan: net_plan.to_string(),
        net_seed,
        result_hash: fnv1a64(result.to_string().as_bytes()),
        trace_id,
    };
    Some(token.to_string())
}

impl std::fmt::Display for ReplayToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // ':' inside free-text fields would shift every later field.
        let clean = |s: &str| s.replace(':', "_");
        write!(
            f,
            "rtv1:{}:{}:{}:{:016x}:{}:{}:{:016x}:{:016x}:{:032x}",
            clean(&self.workload),
            clean(&self.mfr),
            self.index,
            self.seed,
            clean(&self.scale),
            clean(&self.net_plan),
            self.net_seed,
            self.result_hash,
            self.trace_id
        )
    }
}

/// Structured summary of a fleet run. `results` carries the committed
/// payloads in job input order, so a fleet run of seed *s* renders
/// bit-identically to a single-process run of seed *s*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// `(module id, committed result)` in input order.
    pub results: Vec<(String, Value)>,
    /// Per-module outcomes in input order.
    pub outcomes: Vec<FleetModuleOutcome>,
    /// Modules with a committed result.
    pub committed: usize,
    /// Modules quarantined.
    pub quarantined: usize,
    /// Grants beyond each module's first (the re-dispatch count).
    pub redispatches: u64,
    /// `true` when the coordinator finished *partially* because
    /// workers were permanently lost (circuit-breaker eviction with
    /// no healthy replacement): the report is explicitly incomplete
    /// rather than silently short. Worker loss that the fleet fully
    /// absorbed (every module still committed) is not degradation.
    pub degraded: bool,
    /// Workers permanently evicted during the run (informational;
    /// nonzero with `degraded == false` means the fleet rode through
    /// the losses).
    pub workers_lost: u64,
}

impl FleetReport {
    /// `true` when every module committed and nothing was lost to
    /// degradation.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.quarantined == 0 && !self.degraded
    }

    /// One-line human summary. Degradation appends a suffix (the
    /// prefix format is stable for log scrapers).
    #[must_use]
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "{} module(s): {} committed, {} quarantined, {} redispatch(es)",
            self.outcomes.len(),
            self.committed,
            self.quarantined,
            self.redispatches
        );
        if self.degraded {
            line.push_str(&format!(" [DEGRADED: {} worker(s) lost]", self.workers_lost));
        }
        line
    }

    /// Flags the report as the partial product of a degraded run:
    /// `workers_lost` workers were evicted, and not every module
    /// committed. Called by the coordinator; pure reporting.
    pub fn mark_degraded(&mut self, workers_lost: u64) {
        self.workers_lost = workers_lost;
        self.degraded = workers_lost > 0 && self.committed < self.outcomes.len();
        rh_obs::gauge(names::FLEET_DEGRADED, if self.degraded { 1.0 } else { 0.0 });
    }
}

/// Circuit-breaker tuning for one worker link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakerPolicy {
    /// Consecutive transport failures (while Closed or probing) that
    /// trip the breaker Open.
    pub failure_threshold: u32,
    /// Cooldown before an Open breaker admits a half-open probe (ms);
    /// doubles per consecutive trip.
    pub cooldown_ms: u64,
    /// Upper bound on the escalated cooldown (ms).
    pub max_cooldown_ms: u64,
    /// Trips before the worker is evicted from dispatch permanently.
    pub max_trips: u32,
    /// Seed for the deterministic cooldown jitter, so replays of the
    /// same seed reproduce the same probe schedule.
    pub jitter_seed: u64,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown_ms: 500,
            max_cooldown_ms: 8_000,
            max_trips: 4,
            jitter_seed: 0,
        }
    }
}

/// Where one worker's breaker stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are blocked until the cooldown elapses.
    Open,
    /// Cooldown elapsed: exactly one probe request is in flight;
    /// its outcome re-closes or re-trips the breaker.
    HalfOpen,
    /// Permanently removed from dispatch after `max_trips` trips.
    Evicted,
}

impl BreakerState {
    /// Short tag for events.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
            BreakerState::Evicted => "evicted",
        }
    }
}

/// SplitMix64 finalizer for the deterministic cooldown jitter.
fn breaker_mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A per-worker circuit breaker (DESIGN.md §13): Closed → Open after
/// `failure_threshold` consecutive failures, Open → HalfOpen after a
/// jittered, escalating cooldown, HalfOpen → Closed on a successful
/// probe or back to Open on a failed one, and → Evicted for good
/// after `max_trips` trips. Pure and clock-injected like
/// [`JobTable`]; the coordinator drives it with dispatch outcomes.
///
/// ```text
///            failures ≥ threshold                cooldown elapsed
/// Closed ───────────────────────────▶ Open ──────────────────────▶ HalfOpen
///    ▲                                 ▲                               │
///    │            probe ok             │        probe failed           │
///    └─────────────────────────────────┼───────────────────────────────┤
///                                      └───────────────────────────────┘
///                       (trips ≥ max_trips anywhere ▶ Evicted, terminal)
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitBreaker {
    worker: String,
    policy: BreakerPolicy,
    state: BreakerState,
    consecutive_failures: u32,
    trips: u32,
    open_until_ms: u64,
}

impl CircuitBreaker {
    /// A closed breaker guarding `worker`.
    #[must_use]
    pub fn new(worker: impl Into<String>, policy: BreakerPolicy) -> Self {
        Self {
            worker: worker.into(),
            policy,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            trips: 0,
            open_until_ms: 0,
        }
    }

    /// The guarded worker's address/name.
    #[must_use]
    pub fn worker(&self) -> &str {
        &self.worker
    }

    /// Current state (does not advance the clock; see
    /// [`allow_request`](Self::allow_request)).
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker tripped Open.
    #[must_use]
    pub fn trips(&self) -> u32 {
        self.trips
    }

    /// Whether the worker is permanently out of dispatch.
    #[must_use]
    pub fn is_evicted(&self) -> bool {
        self.state == BreakerState::Evicted
    }

    /// When an Open breaker next admits a probe (ms); 0 unless Open.
    #[must_use]
    pub fn open_until_ms(&self) -> u64 {
        if self.state == BreakerState::Open {
            self.open_until_ms
        } else {
            0
        }
    }

    /// Whether a request may be sent to this worker now. Closed:
    /// always. Open: transitions to HalfOpen and admits exactly one
    /// probe once the cooldown has elapsed. HalfOpen: the probe is
    /// already in flight, no more until its outcome lands. Evicted:
    /// never.
    pub fn allow_request(&mut self, now_ms: u64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Evicted | BreakerState::HalfOpen => false,
            BreakerState::Open => {
                if now_ms < self.open_until_ms {
                    return false;
                }
                self.transition(BreakerState::HalfOpen);
                rh_obs::counter(names::FLEET_BREAKER_HALF_OPEN, 1);
                true
            }
        }
    }

    /// Records a successful request: failures reset; a half-open
    /// probe's success re-closes the breaker (and resets the trip
    /// escalation — the worker earned a clean slate).
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.trips = 0;
            self.transition(BreakerState::Closed);
            rh_obs::counter(names::FLEET_BREAKER_CLOSE, 1);
        }
    }

    /// Records a failed request; returns the state afterwards. A
    /// Closed breaker trips after `failure_threshold` consecutive
    /// failures; a HalfOpen probe failure re-trips immediately. Each
    /// trip doubles the cooldown (with deterministic jitter) and
    /// counts toward eviction.
    pub fn record_failure(&mut self, now_ms: u64) -> BreakerState {
        match self.state {
            BreakerState::Evicted | BreakerState::Open => self.state,
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.policy.failure_threshold {
                    self.trip(now_ms);
                }
                self.state
            }
            BreakerState::HalfOpen => {
                self.consecutive_failures += 1;
                self.trip(now_ms);
                self.state
            }
        }
    }

    fn trip(&mut self, now_ms: u64) {
        self.trips += 1;
        rh_obs::counter(names::FLEET_BREAKER_TRIP, 1);
        if self.trips >= self.policy.max_trips {
            self.transition(BreakerState::Evicted);
            rh_obs::counter(names::FLEET_BREAKER_EVICTED, 1);
            return;
        }
        self.open_until_ms = now_ms + self.cooldown_for_trip(self.trips);
        self.transition(BreakerState::Open);
    }

    /// The escalated, jittered cooldown for trip number `trip`
    /// (1-based): `cooldown_ms * 2^(trip-1)`, capped, then jittered
    /// ±25% by a pure function of `(jitter_seed, worker, trip)` so
    /// two breakers tripping together do not probe in lockstep — yet
    /// a replay of the same seed probes on the same schedule.
    #[must_use]
    pub fn cooldown_for_trip(&self, trip: u32) -> u64 {
        let base = self
            .policy
            .cooldown_ms
            .saturating_mul(1u64 << trip.saturating_sub(1).min(20))
            .min(self.policy.max_cooldown_ms)
            .max(1);
        let mut h = self.policy.jitter_seed ^ u64::from(trip).wrapping_mul(0xA24B_AED4_963E_E407);
        for b in self.worker.bytes() {
            h = breaker_mix(h ^ u64::from(b));
        }
        // Map the draw onto [-25%, +25%] of base.
        let span = base / 2;
        let jitter = if span == 0 { 0 } else { breaker_mix(h) % (span + 1) };
        base - span / 2 + jitter
    }

    fn transition(&mut self, to: BreakerState) {
        let from = self.state;
        if from == to {
            return;
        }
        self.state = to;
        rh_obs::event!(
            names::FLEET_BREAKER_EVENT,
            worker = self.worker.clone(),
            from = from.tag(),
            to = to.tag(),
            failures = self.consecutive_failures,
            trips = self.trips
        );
    }
}

/// Fleet sizing and liveness knobs.
#[derive(Debug, Clone)]
pub struct FleetPolicy {
    /// Bounded retry/backoff schedule, shared with campaigns.
    pub retry: RetryPolicy,
    /// Lease duration: a worker must commit or heartbeat within this.
    pub lease_ms: u64,
    /// Consecutive missed heartbeats before a lease turns suspect.
    pub suspect_after_misses: u32,
}

impl Default for FleetPolicy {
    fn default() -> Self {
        Self { retry: RetryPolicy::default(), lease_ms: 5_000, suspect_after_misses: 2 }
    }
}

/// The coordinator's authoritative job/lease/commit state. Pure and
/// clock-injected; the HTTP loop around it lives in `rh-bench`.
#[derive(Debug)]
pub struct JobTable {
    jobs: Vec<Job>,
    policy: FleetPolicy,
    /// Every grant ever made: `(lease_id, job index, generation)`.
    /// Late replies are resolved against this, not just active leases.
    grants: Vec<(u64, usize, u32)>,
    next_lease_id: u64,
    redispatches: u64,
    checkpoint: Option<PathBuf>,
    /// Net-fault environment baked into replay tokens.
    net_plan: String,
    net_seed: u64,
    /// Lease⇄trace bindings: the distributed trace each dispatch
    /// executed under, recorded by the coordinator loop so the token
    /// minted at commit can link back to the trace tree.
    traces: Vec<(u64, u128)>,
}

impl JobTable {
    /// An empty table under `policy`.
    #[must_use]
    pub fn new(policy: FleetPolicy) -> Self {
        Self {
            jobs: Vec::new(),
            policy,
            grants: Vec::new(),
            next_lease_id: 1,
            redispatches: 0,
            checkpoint: None,
            net_plan: "none".to_string(),
            net_seed: 0,
            traces: Vec::new(),
        }
    }

    /// Declares the net-fault environment this run executes under, so
    /// replay tokens record which chaos the committed results
    /// survived. Call before the first commit; the default is
    /// `("none", 0)`.
    pub fn set_replay_context(&mut self, net_plan: impl Into<String>, net_seed: u64) {
        self.net_plan = net_plan.into();
        self.net_seed = net_seed;
    }

    /// Binds `lease_id` to the distributed trace its dispatch executes
    /// under. The token minted when that lease commits carries the
    /// trace id; unbound leases (local runs, tests) mint trace 0.
    pub fn bind_trace(&mut self, lease_id: u64, trace_id: u128) {
        self.traces.push((lease_id, trace_id));
    }

    /// Offsets all future lease IDs by `base`. A restarted
    /// coordinator would otherwise mint the same IDs as its previous
    /// incarnation (the counter restarts at 1), and a worker still
    /// holding a finished job under such an ID would answer the
    /// "new" lease with the *old* job's result — committing one
    /// module's data under another module's name. Callers pass a
    /// per-incarnation nonce (e.g. wall-clock derived); tests keep
    /// the deterministic default of 0.
    pub fn set_lease_base(&mut self, base: u64) {
        self.next_lease_id = base.saturating_add(1);
    }

    /// Admits one job. Input order is report order.
    pub fn add_job(&mut self, module_id: impl Into<String>, payload: Value) {
        self.jobs.push(Job {
            module_id: module_id.into(),
            payload,
            attempts: 0,
            phase: JobPhase::Pending { not_before_ms: 0 },
            errors: Vec::new(),
            token: None,
        });
    }

    /// The active policy.
    #[must_use]
    pub fn policy(&self) -> &FleetPolicy {
        &self.policy
    }

    /// Persists a checkpoint to `path` after every commit/quarantine
    /// and — if the file already exists — resumes from it now:
    /// committed and quarantined entries are applied to matching
    /// jobs, everything else (including work that was in flight when
    /// the previous coordinator died) stays pending and re-runs.
    ///
    /// Call after [`add_job`](Self::add_job)ing the full campaign.
    ///
    /// # Errors
    ///
    /// [`CharError::Checkpoint`] for unreadable, corrupt, or
    /// future-versioned files.
    pub fn with_checkpoint(&mut self, path: impl Into<PathBuf>) -> Result<(), CharError> {
        let path = path.into();
        clean_stale_tmp(&path);
        let entries = load_fleet_checkpoint(&path)?;
        if !entries.is_empty() {
            rh_obs::event!(names::FLEET_CHECKPOINT_LOADED, entries = entries.len());
        }
        for entry in entries {
            if let Some(job) = self.jobs.iter_mut().find(|j| j.module_id == entry.id) {
                job.attempts = entry.attempts;
                job.errors = entry.errors;
                self.redispatches += u64::from(entry.attempts.saturating_sub(1));
                job.phase = match (entry.status.as_str(), entry.result) {
                    ("committed", Some(result)) => {
                        // Re-mint the replay token rather than persist
                        // it: payload and result are both in hand, and
                        // a resumed run is by definition local to this
                        // incarnation (trace 0).
                        job.token = mint_replay_token(
                            &job.payload,
                            &result,
                            &self.net_plan,
                            self.net_seed,
                            0,
                        );
                        JobPhase::Committed { generation: entry.generation, result }
                    }
                    ("quarantined", _) => JobPhase::Quarantined {
                        attempts: entry.attempts,
                        error: entry.error.unwrap_or_default(),
                    },
                    _ => JobPhase::Pending { not_before_ms: 0 },
                };
            }
        }
        self.checkpoint = Some(path);
        Ok(())
    }

    /// The next grantable job's module id, in input order, honoring
    /// retry backoff gates. `None` means nothing is ready *right
    /// now* — there may still be leased or backoff-gated jobs.
    #[must_use]
    pub fn next_ready(&self, now_ms: u64) -> Option<String> {
        self.jobs
            .iter()
            .find(|j| matches!(j.phase, JobPhase::Pending { not_before_ms } if now_ms >= not_before_ms))
            .map(|j| j.module_id.clone())
    }

    /// The earliest time any backoff-gated pending job becomes ready,
    /// for the dispatch loop's sleep calculation.
    #[must_use]
    pub fn next_ready_at(&self) -> Option<u64> {
        self.jobs
            .iter()
            .filter_map(|j| match j.phase {
                JobPhase::Pending { not_before_ms } => Some(not_before_ms),
                _ => None,
            })
            .min()
    }

    /// Grants a lease on `module_id` to `worker`, minting a fresh
    /// `(lease_id, generation)`.
    ///
    /// # Errors
    ///
    /// [`CharError::Checkpoint`] if the job is unknown or not
    /// currently pending (grants race only through coordinator bugs;
    /// the table is single-owner).
    pub fn grant(
        &mut self,
        module_id: &str,
        worker: &str,
        now_ms: u64,
    ) -> Result<JobGrant, CharError> {
        let lease_ms = self.policy.lease_ms;
        let lease_id = self.next_lease_id;
        let idx = self
            .jobs
            .iter()
            .position(|j| j.module_id == module_id)
            .ok_or_else(|| CharError::Checkpoint {
                detail: format!("fleet: grant on unknown module '{module_id}'"),
            })?;
        let job = &mut self.jobs[idx];
        if !matches!(job.phase, JobPhase::Pending { .. }) {
            return Err(CharError::Checkpoint {
                detail: format!("fleet: grant on non-pending module '{module_id}'"),
            });
        }
        self.next_lease_id += 1;
        job.attempts += 1;
        let generation = job.attempts;
        job.phase = JobPhase::Leased(Lease {
            lease_id,
            generation,
            worker: worker.to_string(),
            deadline_ms: now_ms + lease_ms,
            state: LeaseState::Granted,
            missed_heartbeats: 0,
        });
        self.grants.push((lease_id, idx, generation));
        rh_obs::counter(names::FLEET_DISPATCH, 1);
        if generation > 1 {
            self.redispatches += 1;
            rh_obs::counter(names::FLEET_REDISPATCH, 1);
        }
        rh_obs::event!(
            names::FLEET_GRANT_EVENT,
            module = module_id.to_string(),
            worker = worker.to_string(),
            lease = lease_id,
            generation = generation
        );
        Ok(JobGrant {
            module_id: module_id.to_string(),
            payload: job.payload.clone(),
            lease_id,
            generation,
            lease_ms,
        })
    }

    /// Records a successful heartbeat (any successful poll of the
    /// worker counts): renews the lease deadline and clears the miss
    /// counter. Returns `false` for a lease that no longer owns its
    /// job.
    pub fn heartbeat(&mut self, lease_id: u64, now_ms: u64) -> bool {
        let lease_ms = self.policy.lease_ms;
        match self.active_lease_mut(lease_id) {
            Some(lease) => {
                lease.deadline_ms = now_ms + lease_ms;
                lease.state = LeaseState::Heartbeating;
                lease.missed_heartbeats = 0;
                true
            }
            None => false,
        }
    }

    /// Records a missed heartbeat (connection refused, timeout, bad
    /// reply). Returns the lease state afterwards, or `None` for a
    /// lease that no longer owns its job. The lease still only
    /// expires at its deadline — a suspect worker gets the benefit of
    /// the doubt until then.
    pub fn heartbeat_missed(&mut self, lease_id: u64) -> Option<LeaseState> {
        let threshold = self.policy.suspect_after_misses;
        let lease = self.active_lease_mut(lease_id)?;
        lease.missed_heartbeats += 1;
        rh_obs::counter(names::FLEET_HEARTBEAT_MISSED, 1);
        if lease.missed_heartbeats >= threshold {
            lease.state = LeaseState::Suspect;
        }
        Some(lease.state)
    }

    /// Returns a job to pending *without* consuming an attempt — the
    /// dispatch itself failed (connection refused before the worker
    /// ever saw the job), so the module's retry budget is untouched.
    /// The grant's generation is burned, which is exactly what makes
    /// a late reply from a half-delivered job stale.
    pub fn release(&mut self, lease_id: u64, now_ms: u64) {
        let base = self.policy.retry.base_backoff_ms;
        if let Some(idx) = self.active_lease_index(lease_id) {
            let job = &mut self.jobs[idx];
            job.attempts = job.attempts.saturating_sub(1);
            job.phase = JobPhase::Pending { not_before_ms: now_ms + base };
        }
    }

    /// Applies a worker-reported failure from lease `lease_id`.
    /// Transient errors retry behind the deterministic backoff until
    /// the attempt budget runs out; anything else quarantines.
    pub fn fail(
        &mut self,
        lease_id: u64,
        error: &str,
        transient: bool,
        now_ms: u64,
    ) -> FailOutcome {
        let max_attempts = self.policy.retry.max_attempts;
        let Some(idx) = self.active_lease_index(lease_id) else {
            return FailOutcome::Stale;
        };
        let retry = self.policy.retry.clone();
        let job = &mut self.jobs[idx];
        job.errors.push(error.to_string());
        if transient && job.attempts < max_attempts {
            let backoff_ms = retry.backoff_ms(&job.module_id, job.attempts);
            job.phase = JobPhase::Pending { not_before_ms: now_ms + backoff_ms };
            FailOutcome::Retrying { backoff_ms }
        } else {
            job.phase =
                JobPhase::Quarantined { attempts: job.attempts, error: error.to_string() };
            rh_obs::counter(names::FLEET_QUARANTINED, 1);
            self.save_if_configured();
            FailOutcome::Quarantined
        }
    }

    /// Expires every lease whose deadline has passed. Expired jobs go
    /// back to pending behind the retry backoff (they re-dispatch on
    /// the next [`grant`](Self::grant)), or quarantine when the
    /// attempt budget is spent.
    pub fn tick(&mut self, now_ms: u64) -> Vec<ExpiredLease> {
        let max_attempts = self.policy.retry.max_attempts;
        let retry = self.policy.retry.clone();
        let mut expired = Vec::new();
        let mut any_quarantined = false;
        for job in &mut self.jobs {
            let JobPhase::Leased(lease) = &job.phase else { continue };
            if now_ms < lease.deadline_ms {
                continue;
            }
            let info = ExpiredLease {
                module_id: job.module_id.clone(),
                lease_id: lease.lease_id,
                worker: lease.worker.clone(),
                quarantined: job.attempts >= max_attempts,
            };
            rh_obs::counter(names::FLEET_LEASE_EXPIRED, 1);
            rh_obs::event!(
                names::FLEET_EXPIRE_EVENT,
                module = info.module_id.clone(),
                lease = info.lease_id,
                worker = info.worker.clone()
            );
            job.errors.push(format!(
                "lease {} on worker {} expired after {} attempt(s)",
                lease.lease_id, lease.worker, job.attempts
            ));
            if info.quarantined {
                job.phase = JobPhase::Quarantined {
                    attempts: job.attempts,
                    error: "lease expired; attempt budget exhausted".to_string(),
                };
                rh_obs::counter(names::FLEET_QUARANTINED, 1);
                any_quarantined = true;
            } else {
                let backoff_ms = retry.backoff_ms(&job.module_id, job.attempts);
                job.phase = JobPhase::Pending { not_before_ms: now_ms + backoff_ms };
            }
            expired.push(info);
        }
        if any_quarantined {
            self.save_if_configured();
        }
        expired
    }

    /// Applies an arriving result under the at-most-once rule: only
    /// the lease that currently owns the job may commit. See the
    /// [module docs](self).
    pub fn commit(&mut self, lease_id: u64, result: Value) -> CommitOutcome {
        let Some(&(_, idx, generation)) =
            self.grants.iter().find(|(id, _, _)| *id == lease_id)
        else {
            rh_obs::counter(names::FLEET_DUPLICATE, 1);
            return CommitOutcome::Stale;
        };
        let job = &mut self.jobs[idx];
        match &job.phase {
            JobPhase::Committed { .. } => {
                rh_obs::counter(names::FLEET_DUPLICATE, 1);
                CommitOutcome::Duplicate
            }
            JobPhase::Leased(lease) if lease.lease_id == lease_id => {
                let trace_id = self
                    .traces
                    .iter()
                    .find(|(id, _)| *id == lease_id)
                    .map_or(0, |&(_, t)| t);
                job.token =
                    mint_replay_token(&job.payload, &result, &self.net_plan, self.net_seed, trace_id);
                job.phase = JobPhase::Committed { generation, result };
                rh_obs::counter(names::FLEET_COMMIT, 1);
                self.save_if_configured();
                CommitOutcome::Committed
            }
            // The job moved on: expired & re-leased, re-pending, or
            // quarantined. The zombie's reply is dropped.
            _ => {
                rh_obs::counter(names::FLEET_DUPLICATE, 1);
                CommitOutcome::Stale
            }
        }
    }

    /// Whether every job reached a terminal phase.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.jobs
            .iter()
            .all(|j| matches!(j.phase, JobPhase::Committed { .. } | JobPhase::Quarantined { .. }))
    }

    /// Jobs admitted.
    #[must_use]
    pub fn total(&self) -> usize {
        self.jobs.len()
    }

    /// Jobs in a terminal phase.
    #[must_use]
    pub fn done_count(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| {
                matches!(j.phase, JobPhase::Committed { .. } | JobPhase::Quarantined { .. })
            })
            .count()
    }

    /// Active leases, for the poll loop: `(lease_id, worker, state)`.
    #[must_use]
    pub fn active_leases(&self) -> Vec<(u64, String, LeaseState)> {
        self.jobs
            .iter()
            .filter_map(|j| match &j.phase {
                JobPhase::Leased(l) => Some((l.lease_id, l.worker.clone(), l.state)),
                _ => None,
            })
            .collect()
    }

    /// Grants beyond each module's first.
    #[must_use]
    pub fn redispatches(&self) -> u64 {
        self.redispatches
    }

    /// The generation a lease was granted at (== the module's attempt
    /// count at grant time), for any lease ever minted.
    #[must_use]
    pub fn lease_generation(&self, lease_id: u64) -> Option<u32> {
        self.grants.iter().find(|(id, _, _)| *id == lease_id).map(|&(_, _, g)| g)
    }

    /// The final report. Call once [`is_done`](Self::is_done) (jobs
    /// still in flight are simply absent from `results`).
    #[must_use]
    pub fn report(&self) -> FleetReport {
        let mut results = Vec::new();
        let mut outcomes = Vec::new();
        for job in &self.jobs {
            let status = match &job.phase {
                JobPhase::Committed { result, .. } => {
                    results.push((job.module_id.clone(), result.clone()));
                    "committed"
                }
                JobPhase::Quarantined { .. } => "quarantined",
                _ => "pending",
            };
            outcomes.push(FleetModuleOutcome {
                id: job.module_id.clone(),
                status: status.to_string(),
                attempts: job.attempts,
                errors: job.errors.clone(),
                replay_token: job.token.clone(),
            });
        }
        let committed = outcomes.iter().filter(|o| o.status == "committed").count();
        let quarantined = outcomes.iter().filter(|o| o.status == "quarantined").count();
        FleetReport {
            results,
            outcomes,
            committed,
            quarantined,
            redispatches: self.redispatches,
            degraded: false,
            workers_lost: 0,
        }
    }

    fn active_lease_index(&self, lease_id: u64) -> Option<usize> {
        self.jobs.iter().position(
            |j| matches!(&j.phase, JobPhase::Leased(l) if l.lease_id == lease_id),
        )
    }

    fn active_lease_mut(&mut self, lease_id: u64) -> Option<&mut Lease> {
        self.jobs.iter_mut().find_map(|j| match &mut j.phase {
            JobPhase::Leased(l) if l.lease_id == lease_id => Some(l),
            _ => None,
        })
    }

    fn save_if_configured(&self) {
        if let Some(path) = &self.checkpoint {
            match self.save_checkpoint(path) {
                Ok(entries) => {
                    rh_obs::event!(names::FLEET_CHECKPOINT_SAVED, entries = entries, ok = true);
                }
                Err(e) => {
                    rh_obs::event!(
                        names::FLEET_CHECKPOINT_SAVED,
                        entries = 0usize,
                        ok = false,
                        error = e.to_string()
                    );
                }
            }
        }
    }

    /// Writes the terminal entries (committed + quarantined) to
    /// `path` via tmp-write + atomic rename. In-flight leases are not
    /// persisted by design.
    ///
    /// # Errors
    ///
    /// [`CharError::Checkpoint`] on serialization or I/O failure.
    pub fn save_checkpoint(&self, path: &Path) -> Result<usize, CharError> {
        let entries: Vec<FleetCheckpointEntry> = self
            .jobs
            .iter()
            .filter_map(|job| match &job.phase {
                JobPhase::Committed { generation, result } => Some(FleetCheckpointEntry {
                    id: job.module_id.clone(),
                    status: "committed".to_string(),
                    attempts: job.attempts,
                    generation: *generation,
                    errors: job.errors.clone(),
                    result: Some(result.clone()),
                    error: None,
                }),
                JobPhase::Quarantined { attempts, error } => Some(FleetCheckpointEntry {
                    id: job.module_id.clone(),
                    status: "quarantined".to_string(),
                    attempts: *attempts,
                    generation: 0,
                    errors: job.errors.clone(),
                    result: None,
                    error: Some(error.clone()),
                }),
                _ => None,
            })
            .collect();
        let count = entries.len();
        let cp = FleetCheckpoint { version: FLEET_CHECKPOINT_VERSION, entries };
        let bytes = serde_json::to_vec_pretty(&cp.to_json_value()).map_err(|e| {
            CharError::Checkpoint { detail: format!("serialize fleet checkpoint: {e}") }
        })?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, bytes).map_err(|e| CharError::Checkpoint {
            detail: format!("write {}: {e}", tmp.display()),
        })?;
        std::fs::rename(&tmp, path).map_err(|e| CharError::Checkpoint {
            detail: format!("rename {} -> {}: {e}", tmp.display(), path.display()),
        })?;
        Ok(count)
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FleetCheckpointEntry {
    id: String,
    status: String,
    attempts: u32,
    generation: u32,
    errors: Vec<String>,
    result: Option<Value>,
    error: Option<String>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FleetCheckpoint {
    version: u32,
    entries: Vec<FleetCheckpointEntry>,
}

fn clean_stale_tmp(path: &Path) {
    let tmp = path.with_extension("tmp");
    if tmp.exists() && std::fs::remove_file(&tmp).is_ok() {
        rh_obs::event!(names::CAMPAIGN_CHECKPOINT_STALE_TMP, path = tmp.display().to_string());
    }
}

/// Loads a fleet checkpoint, returning no entries for a missing file.
///
/// # Errors
///
/// [`CharError::Checkpoint`] for unreadable, corrupt, or
/// future-versioned files.
pub fn verify_fleet_checkpoint(path: &Path) -> Result<usize, CharError> {
    load_fleet_checkpoint(path).map(|entries| entries.len())
}

fn load_fleet_checkpoint(path: &Path) -> Result<Vec<FleetCheckpointEntry>, CharError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(CharError::Checkpoint { detail: format!("read {}: {e}", path.display()) })
        }
    };
    let value: Value = serde_json::from_str(&text).map_err(|e| CharError::Checkpoint {
        detail: format!("parse {}: {e}", path.display()),
    })?;
    match value.field("version").as_u64() {
        Some(v) if v > u64::from(FLEET_CHECKPOINT_VERSION) => {
            return Err(CharError::Checkpoint {
                detail: format!(
                    "{} was written by fleet checkpoint schema version {v}; this build reads \
                     versions <= {FLEET_CHECKPOINT_VERSION}",
                    path.display()
                ),
            });
        }
        Some(_) => {}
        None => {
            return Err(CharError::Checkpoint {
                detail: format!("{} has no checkpoint version field", path.display()),
            });
        }
    }
    let cp = FleetCheckpoint::from_json_value(&value).map_err(|e| CharError::Checkpoint {
        detail: format!("decode {}: {e}", path.display()),
    })?;
    Ok(cp.entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn table() -> JobTable {
        let mut t = JobTable::new(FleetPolicy {
            retry: RetryPolicy { max_attempts: 3, ..RetryPolicy::default() },
            lease_ms: 1_000,
            suspect_after_misses: 2,
        });
        t.add_job("m0", json!({"n": 0}));
        t.add_job("m1", json!({"n": 1}));
        t
    }

    #[test]
    fn replay_token_round_trips_and_rejects_malformed() {
        let token = ReplayToken {
            workload: "row_variation".to_string(),
            mfr: "MfrA".to_string(),
            index: 3,
            seed: 42,
            scale: "Smoke".to_string(),
            net_plan: "flaky-link".to_string(),
            net_seed: 7,
            result_hash: 0xdead_beef,
            trace_id: 0xabc,
        };
        let wire = token.to_string();
        assert!(wire.starts_with("rtv1:row_variation:MfrA:3:"), "got {wire}");
        assert_eq!(ReplayToken::parse(&wire), Ok(token.clone()));
        // Colons in free-text fields must not shift later fields.
        let evil = ReplayToken { net_plan: "a:b".to_string(), ..token };
        assert_eq!(ReplayToken::parse(&evil.to_string()).map(|t| t.net_plan), Ok("a_b".into()));
        for bad in ["", "rtv1:short", "rtv2:w:m:1:0:s:p:0:0:0", "rtv1:w:m:x:0:s:p:0:0:0"] {
            assert!(ReplayToken::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn commit_mints_replay_tokens_for_replayable_payloads_only() {
        let mut t = table();
        t.add_job(
            "mfr_a#0",
            json!({"mfr": "MfrA", "index": 0, "seed": 9, "scale": "Smoke",
                   "workload": "row_variation"}),
        );
        t.set_replay_context("flaky-link", 1234);
        // Synthetic payload: committed, but tokenless.
        let g = t.grant("m0", "w1", 0).unwrap();
        assert_eq!(t.commit(g.lease_id, json!({"ok": true})), CommitOutcome::Committed);
        // Replayable payload, with a trace bound to the lease.
        let g = t.grant("mfr_a#0", "w1", 0).unwrap();
        t.bind_trace(g.lease_id, 0xfeed);
        let result = json!({"ber": 0.5});
        assert_eq!(t.commit(g.lease_id, result.clone()), CommitOutcome::Committed);
        let report = t.report();
        let by_id = |id: &str| {
            report.outcomes.iter().find(|o| o.id == id).unwrap_or_else(|| panic!("{id} missing"))
        };
        assert_eq!(by_id("m0").replay_token, None);
        let token_str = by_id("mfr_a#0").replay_token.clone().expect("token minted");
        let token = ReplayToken::parse(&token_str).expect("token parses");
        assert_eq!(token.workload, "row_variation");
        assert_eq!((token.index, token.seed), (0, 9));
        assert_eq!((token.net_plan.as_str(), token.net_seed), ("flaky-link", 1234));
        assert_eq!(token.trace_id, 0xfeed);
        assert_eq!(
            token.result_hash,
            fnv1a64(rh_core_result_json(&result).as_bytes()),
            "hash covers the committed result's compact JSON"
        );
    }

    /// Compact-JSON helper mirroring what the minting path hashes.
    fn rh_core_result_json(v: &Value) -> String {
        v.to_string()
    }

    #[test]
    fn lease_base_offsets_every_minted_id() {
        let mut t = table();
        t.set_lease_base(7 << 32);
        let g0 = t.grant("m0", "w1", 0).unwrap();
        let g1 = t.grant("m1", "w1", 0).unwrap();
        assert_eq!(g0.lease_id, (7 << 32) + 1);
        assert_eq!(g1.lease_id, (7 << 32) + 2);
        // The offset changes identity only — commits still resolve.
        assert_eq!(t.commit(g0.lease_id, json!({"ok": true})), CommitOutcome::Committed);
    }

    #[test]
    fn grant_heartbeat_commit_happy_path() {
        let mut t = table();
        assert_eq!(t.next_ready(0).as_deref(), Some("m0"));
        let g = t.grant("m0", "w1", 0).unwrap();
        assert_eq!((g.lease_id, g.generation), (1, 1));
        // m0 now leased; the next ready job is m1.
        assert_eq!(t.next_ready(0).as_deref(), Some("m1"));

        assert!(t.heartbeat(g.lease_id, 900));
        // Heartbeat renewed the deadline: tick at the original
        // deadline expires nothing.
        assert!(t.tick(1_100).is_empty());

        assert_eq!(t.commit(g.lease_id, json!({"ber": 0.5})), CommitOutcome::Committed);
        assert_eq!(t.commit(g.lease_id, json!({"ber": 0.5})), CommitOutcome::Duplicate);
        assert!(!t.is_done(), "m1 still pending");
        assert_eq!(t.done_count(), 1);
    }

    #[test]
    fn expired_lease_redispatches_and_zombie_reply_is_stale() {
        let mut t = table();
        let g1 = t.grant("m0", "w1", 0).unwrap();
        // Park m1 on another worker (and keep it alive) so the gate
        // arithmetic below is m0's alone.
        let parked = t.grant("m1", "w9", 0).unwrap();
        assert!(t.heartbeat(parked.lease_id, 900));
        // No heartbeat on m0's lease: it dies at its deadline.
        let expired = t.tick(1_000);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].module_id, "m0");
        assert!(!expired[0].quarantined);

        // The job waits out its backoff, then re-dispatches with a
        // bumped generation.
        assert!(t.next_ready(1_000).as_deref() != Some("m0"), "backoff gates the re-grant");
        let ready_at = t.next_ready_at().unwrap();
        assert!(ready_at > 1_000);
        let g2 = t.grant("m0", "w2", ready_at).unwrap();
        assert_eq!(g2.generation, 2);
        assert!(g2.lease_id > g1.lease_id);
        assert_eq!(t.redispatches(), 1);

        // The zombie's late reply must not commit...
        assert_eq!(t.commit(g1.lease_id, json!({"zombie": true})), CommitOutcome::Stale);
        // ...and the live lease's result must.
        assert_eq!(t.commit(g2.lease_id, json!({"ber": 1.0})), CommitOutcome::Committed);
        let report = t.report();
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.results[0].1, json!({"ber": 1.0}), "zombie result must not win");
        assert_eq!(report.redispatches, 1);
    }

    #[test]
    fn heartbeat_misses_mark_suspect_but_deadline_rules() {
        let mut t = table();
        let g = t.grant("m0", "w1", 0).unwrap();
        assert_eq!(t.heartbeat_missed(g.lease_id), Some(LeaseState::Granted));
        assert_eq!(t.heartbeat_missed(g.lease_id), Some(LeaseState::Suspect));
        // Suspect is advisory; the lease still holds until deadline.
        assert!(t.tick(500).is_empty());
        // A successful heartbeat rehabilitates the lease.
        assert!(t.heartbeat(g.lease_id, 600));
        assert_eq!(t.active_leases()[0].2, LeaseState::Heartbeating);
        assert!(t.tick(1_500).is_empty(), "renewed deadline holds");
        assert_eq!(t.tick(1_700).len(), 1, "then expires");
        // Heartbeats on a dead lease are refused.
        assert!(!t.heartbeat(g.lease_id, 1_800));
        assert_eq!(t.heartbeat_missed(g.lease_id), None);
    }

    #[test]
    fn attempt_budget_exhaustion_quarantines() {
        let mut t = table();
        let mut now = 0u64;
        for attempt in 1..=3u32 {
            let ready_at = t.next_ready_at().unwrap().max(now);
            let g = t.grant("m0", "w1", ready_at).unwrap();
            assert_eq!(g.generation, attempt);
            now = ready_at + 1_000;
            let expired = t.tick(now);
            assert_eq!(expired.len(), 1);
            assert_eq!(expired[0].quarantined, attempt == 3);
        }
        let report = t.report();
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.outcomes[0].attempts, 3);
        assert!(!report.is_clean());
        // Quarantined jobs never re-dispatch.
        t.grant("m1", "w1", now).unwrap();
        assert_eq!(t.next_ready(u64::MAX), None);
    }

    #[test]
    fn transient_failure_retries_and_hard_failure_quarantines() {
        let mut t = table();
        let g = t.grant("m0", "w1", 0).unwrap();
        let FailOutcome::Retrying { backoff_ms } =
            t.fail(g.lease_id, "host link flake", true, 100)
        else {
            panic!("transient failure should retry");
        };
        assert!(backoff_ms > 0);
        // Stale failure reports are ignored.
        assert_eq!(t.fail(g.lease_id, "again", true, 150), FailOutcome::Stale);

        let g2 = t.grant("m0", "w1", 100 + backoff_ms).unwrap();
        assert_eq!(g2.generation, 2);
        assert_eq!(
            t.fail(g2.lease_id, "module unresponsive", false, 300),
            FailOutcome::Quarantined
        );
        let report = t.report();
        assert_eq!(report.outcomes[0].errors.len(), 2);
        assert_eq!(report.quarantined, 1);
    }

    #[test]
    fn release_returns_job_without_burning_an_attempt() {
        let mut t = table();
        let g = t.grant("m0", "w1", 0).unwrap();
        t.release(g.lease_id, 0);
        let ready_at = t.next_ready_at().unwrap();
        let g2 = t.grant("m0", "w2", ready_at).unwrap();
        assert_eq!(g2.generation, 1, "released dispatch must not consume the budget");
        // But the released lease is dead for commits.
        assert_eq!(t.commit(g.lease_id, json!(1)), CommitOutcome::Stale);
        assert_eq!(t.commit(g2.lease_id, json!(2)), CommitOutcome::Committed);
    }

    #[test]
    fn checkpoint_roundtrip_drops_in_flight_leases() {
        let dir = std::env::temp_dir().join(format!("rh-fleet-cp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.json");
        let _ = std::fs::remove_file(&path);

        let mut t = table();
        t.add_job("m2", json!({"n": 2}));
        t.with_checkpoint(&path).unwrap();
        let g0 = t.grant("m0", "w1", 0).unwrap();
        assert_eq!(t.commit(g0.lease_id, json!({"ok": 0})), CommitOutcome::Committed);
        let g1 = t.grant("m1", "w1", 0).unwrap();
        let _in_flight = t.grant("m2", "w2", 0).unwrap();
        assert_eq!(
            t.fail(g1.lease_id, "module unresponsive", false, 10),
            FailOutcome::Quarantined
        );
        // m2's lease is in flight when the "coordinator dies" here.

        let mut resumed = JobTable::new(FleetPolicy {
            retry: RetryPolicy { max_attempts: 3, ..RetryPolicy::default() },
            lease_ms: 1_000,
            suspect_after_misses: 2,
        });
        resumed.add_job("m0", json!({"n": 0}));
        resumed.add_job("m1", json!({"n": 1}));
        resumed.add_job("m2", json!({"n": 2}));
        resumed.with_checkpoint(&path).unwrap();

        // Committed and quarantined entries survive; only the
        // in-flight m2 is pending again.
        assert_eq!(resumed.next_ready(0).as_deref(), Some("m2"));
        assert_eq!(resumed.done_count(), 2);
        let g2 = resumed.grant("m2", "w3", 0).unwrap();
        assert_eq!(resumed.commit(g2.lease_id, json!({"ok": 2})), CommitOutcome::Committed);
        assert!(resumed.is_done());
        let report = resumed.report();
        assert_eq!(report.committed, 2);
        assert_eq!(report.quarantined, 1);
        assert_eq!(verify_fleet_checkpoint(&path).unwrap(), 3);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn future_version_checkpoint_is_rejected() {
        let dir = std::env::temp_dir().join(format!("rh-fleet-ver-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.json");
        std::fs::write(&path, "{\"version\": 99, \"entries\": []}").unwrap();
        let mut t = table();
        let err = t.with_checkpoint(&path).unwrap_err();
        assert!(err.to_string().contains("version 99"), "got {err}");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn grant_refuses_unknown_and_non_pending_jobs() {
        let mut t = table();
        assert!(t.grant("nope", "w1", 0).is_err());
        t.grant("m0", "w1", 0).unwrap();
        assert!(t.grant("m0", "w1", 0).is_err(), "double grant must be refused");
    }

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(
            "127.0.0.1:9001",
            BreakerPolicy {
                failure_threshold: 3,
                cooldown_ms: 1_000,
                max_cooldown_ms: 8_000,
                max_trips: 3,
                jitter_seed: 42,
            },
        )
    }

    #[test]
    fn breaker_trips_after_threshold_and_admits_one_probe() {
        let mut b = breaker();
        assert!(b.allow_request(0));
        assert_eq!(b.record_failure(0), BreakerState::Closed);
        assert_eq!(b.record_failure(0), BreakerState::Closed);
        assert!(b.allow_request(0), "two failures stay under the threshold");
        assert_eq!(b.record_failure(0), BreakerState::Open);
        assert_eq!(b.trips(), 1);

        // Open: blocked until the cooldown elapses.
        assert!(!b.allow_request(1));
        let ready = b.open_until_ms();
        assert!((750..=1_500).contains(&ready), "jittered cooldown out of band: {ready}");
        // Exactly one half-open probe is admitted, not a stampede.
        assert!(b.allow_request(ready));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow_request(ready), "second probe must wait for the first");

        // Probe success re-closes and resets the escalation.
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
        assert!(b.allow_request(ready + 1));
    }

    #[test]
    fn failed_probe_retrips_with_escalating_cooldown_until_eviction() {
        let mut b = breaker();
        for _ in 0..3 {
            b.record_failure(0);
        }
        assert_eq!(b.state(), BreakerState::Open);
        let first_cooldown = b.cooldown_for_trip(1);
        let second_cooldown = b.cooldown_for_trip(2);
        assert!(
            second_cooldown > first_cooldown,
            "cooldowns must escalate: {first_cooldown} -> {second_cooldown}"
        );

        // Probe #1 fails: trip 2.
        let t1 = b.open_until_ms();
        assert!(b.allow_request(t1));
        assert_eq!(b.record_failure(t1), BreakerState::Open);
        assert_eq!(b.trips(), 2);

        // Probe #2 fails: trip 3 == max_trips -> evicted for good.
        let t2 = b.open_until_ms();
        assert!(t2 > t1);
        assert!(b.allow_request(t2));
        assert_eq!(b.record_failure(t2), BreakerState::Evicted);
        assert!(b.is_evicted());
        assert!(!b.allow_request(u64::MAX), "eviction is terminal");
        assert_eq!(b.record_failure(u64::MAX), BreakerState::Evicted);
    }

    #[test]
    fn breaker_jitter_is_deterministic_and_worker_dependent() {
        let b1 = breaker();
        let b2 = breaker();
        assert_eq!(b1.cooldown_for_trip(1), b2.cooldown_for_trip(1), "same seed, same schedule");
        let other = CircuitBreaker::new(
            "127.0.0.1:9002",
            BreakerPolicy { jitter_seed: 42, ..BreakerPolicy::default() },
        );
        let same_policy = CircuitBreaker::new(
            "127.0.0.1:9001",
            BreakerPolicy { jitter_seed: 42, ..BreakerPolicy::default() },
        );
        assert_ne!(
            other.cooldown_for_trip(1),
            same_policy.cooldown_for_trip(1),
            "different workers must not probe in lockstep"
        );
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = breaker();
        b.record_failure(0);
        b.record_failure(0);
        b.record_success();
        b.record_failure(0);
        b.record_failure(0);
        assert_eq!(b.state(), BreakerState::Closed, "streak must reset on success");
        b.record_failure(0);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn degraded_report_semantics() {
        let mut t = table();
        let g = t.grant("m0", "w1", 0).unwrap();
        assert_eq!(t.commit(g.lease_id, json!({"ok": 0})), CommitOutcome::Committed);
        // m1 never finishes: the coordinator lost its last worker.
        let mut partial = t.report();
        assert_eq!(partial.committed, 1);
        partial.mark_degraded(1);
        assert!(partial.degraded);
        assert!(!partial.is_clean());
        assert!(
            partial.summary_line().starts_with("2 module(s): 1 committed, 0 quarantined"),
            "stable prefix broken: {}",
            partial.summary_line()
        );
        assert!(partial.summary_line().contains("[DEGRADED: 1 worker(s) lost]"));

        // Losing workers while still committing everything is NOT
        // degradation — the fleet absorbed it (fleet-smoke relies on
        // this: kill -9 one of two workers, still clean 4/4).
        let g1 = t.grant("m1", "w2", 0).unwrap();
        assert_eq!(t.commit(g1.lease_id, json!({"ok": 1})), CommitOutcome::Committed);
        let mut full = t.report();
        full.mark_degraded(1);
        assert!(!full.degraded);
        assert!(full.is_clean());
        assert_eq!(full.workers_lost, 1, "losses stay visible in the report");
        assert!(!full.summary_line().contains("DEGRADED"));
    }
}
