//! Reverse engineering of the in-DRAM logical→physical row mapping
//! (§4.2): single-sided hammer each sampled row, find the two
//! neighboring rows with the most bit flips (they are physically
//! adjacent to the aggressor), then deduce the scrambling scheme that
//! explains every observed adjacency.

use crate::config::Scale;
use crate::error::CharError;
use rh_dram::{BankId, DataPattern, PatternKind, RowAddr, RowMapping};
use rh_softmc::TestBench;
use serde::{Deserialize, Serialize};

/// Hammers used per aggressor during reverse engineering — high enough
/// to flip bits in the physically-adjacent rows of every module.
const RE_HAMMERS: u64 = 512 * 1024;

/// Logical window (± rows) searched for an aggressor's victims. The
/// scrambling schemes of real chips permute addresses within small
/// blocks, so physical neighbors stay close in logical space.
const WINDOW: i64 = 8;

/// One adjacency observation: an aggressor row and the (up to two)
/// rows that flipped the most when it was hammered single-sided.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Adjacency {
    /// The hammered (logical) row.
    pub aggressor: RowAddr,
    /// Logical rows observed to be physically adjacent, most-flips
    /// first.
    pub victims: Vec<RowAddr>,
}

/// Collects adjacency observations for `count` sampled aggressor rows.
///
/// Rows are sampled with an odd stride so every low-address-bit residue
/// is covered — necessary to distinguish scrambling schemes that only
/// act on particular address bits.
///
/// # Errors
///
/// Device errors from the underlying hammering and reads.
pub fn observe_adjacencies(
    bench: &mut TestBench,
    bank: BankId,
    count: u32,
) -> Result<Vec<Adjacency>, CharError> {
    // Rowstripe maximizes observable flips regardless of cell
    // orientation: every cell's susceptible value is present in one of
    // the two fills, and we count any mismatch.
    let pattern = DataPattern::new(PatternKind::Checkered, 0);
    let row_bytes = bench.module().row_bytes();
    let mut out = Vec::with_capacity(count as usize);
    for i in 0..count {
        let aggressor = RowAddr(512 + 9 * i);
        // Fill the logical window around the aggressor. Distance here is
        // logical — it only determines the fill byte, and we compare
        // each row against its own written fill below.
        for d in -WINDOW..=WINDOW {
            let row = aggressor.offset(d);
            let fill = pattern.row_fill(row, d, row_bytes);
            bench.module_mut().write_row_direct(bank, row, &fill)?;
        }
        bench.hammer_single_sided(bank, aggressor, RE_HAMMERS, None, None)?;
        // Count flips in each window row.
        let mut flips: Vec<(u64, RowAddr)> = Vec::new();
        for d in -WINDOW..=WINDOW {
            if d == 0 {
                continue;
            }
            let row = aggressor.offset(d);
            let read = bench.module_mut().read_row_direct(bank, row)?;
            let expect = pattern.row_fill(row, d, row_bytes);
            let n: u64 = read
                .iter()
                .zip(&expect)
                .map(|(a, b)| u64::from((a ^ b).count_ones()))
                .sum();
            if n > 0 {
                flips.push((n, row));
            }
        }
        flips.sort_by(|a, b| b.0.cmp(&a.0).then(a.1 .0.cmp(&b.1 .0)));
        // The two victims with the most flips are physically adjacent
        // (§4.2); require them to dominate clearly (≥4× the runner-up)
        // so weak distance-2 coupling is not mistaken for adjacency.
        let mut victims: Vec<RowAddr> = Vec::new();
        for (n, row) in flips.iter().take(2) {
            let runner_up = flips.get(2).map(|f| f.0).unwrap_or(0);
            if *n >= 4 * runner_up.max(1) || runner_up == 0 {
                victims.push(*row);
            }
        }
        if !victims.is_empty() {
            out.push(Adjacency { aggressor, victims });
        }
    }
    Ok(out)
}

/// All candidate mapping schemes the inference considers: identity plus
/// every conditional-XOR scheme over low address bits.
fn candidate_schemes() -> Vec<RowMapping> {
    let mut v = vec![RowMapping::Direct];
    for cond_bit in 2..=5u32 {
        for mask in 1..=7u32 {
            if mask & (1 << cond_bit) == 0 {
                v.push(RowMapping::ConditionalXor { cond_bit, mask });
            }
        }
    }
    v
}

/// Deduces the mapping scheme consistent with every observation.
///
/// A scheme is consistent with an observation when every reported
/// victim is at physical distance 1 from the aggressor under the
/// scheme. When several schemes survive (an under-sampled bank), the
/// one surviving the *most specific* check — and first in candidate
/// order — is returned, preferring `Direct`.
///
/// # Errors
///
/// [`CharError::MappingUnresolved`] when no candidate explains the
/// data.
pub fn infer_scheme(observations: &[Adjacency]) -> Result<RowMapping, CharError> {
    let consistent = |m: &RowMapping| -> bool {
        observations.iter().all(|o| {
            let ap = m.logical_to_physical(o.aggressor);
            o.victims.iter().all(|v| {
                let vp = m.logical_to_physical(*v);
                (vp.0 as i64 - ap.0 as i64).abs() == 1
            })
        })
    };
    candidate_schemes()
        .into_iter()
        .find(consistent)
        .ok_or(CharError::MappingUnresolved { observations: observations.len() })
}

/// Full reverse-engineering pass: observe adjacencies on a sample of
/// rows and deduce the scheme.
///
/// # Errors
///
/// Device errors, or [`CharError::MappingUnresolved`].
pub fn reverse_engineer(
    bench: &mut TestBench,
    bank: BankId,
    scale: Scale,
) -> Result<RowMapping, CharError> {
    let obs = observe_adjacencies(bench, bank, scale.mapping_rows())?;
    if obs.is_empty() {
        return Err(CharError::MappingUnresolved { observations: 0 });
    }
    infer_scheme(&obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rh_dram::Manufacturer;

    #[test]
    fn recovers_ground_truth_for_every_manufacturer() {
        for mfr in Manufacturer::ALL {
            let mut bench = TestBench::new(mfr, 11);
            bench.set_temperature(75.0).unwrap();
            let m = reverse_engineer(&mut bench, BankId(0), Scale::Smoke).unwrap();
            assert_eq!(m, RowMapping::for_manufacturer(mfr), "{mfr}");
        }
    }

    #[test]
    fn inference_rejects_contradictory_data() {
        // An aggressor claiming a victim 5 rows away fits no scheme.
        let obs = vec![Adjacency {
            aggressor: RowAddr(100),
            victims: vec![RowAddr(105), RowAddr(99)],
        }];
        assert!(matches!(infer_scheme(&obs), Err(CharError::MappingUnresolved { .. })));
    }

    #[test]
    fn inference_on_synthetic_scrambled_data() {
        // Generate synthetic observations from a known scheme and
        // verify inference recovers it.
        let truth = RowMapping::ConditionalXor { cond_bit: 3, mask: 0b101 };
        let mut obs = Vec::new();
        for r in (64u32..256).step_by(9) {
            let a = RowAddr(r);
            let ap = truth.logical_to_physical(a);
            let victims: Vec<RowAddr> = [ap.0 - 1, ap.0 + 1]
                .into_iter()
                .map(|p| truth.physical_to_logical(RowAddr(p)))
                .collect();
            obs.push(Adjacency { aggressor: a, victims });
        }
        assert_eq!(infer_scheme(&obs).unwrap(), truth);
    }

    #[test]
    fn candidates_include_all_ground_truths() {
        let cands = candidate_schemes();
        for mfr in Manufacturer::ALL {
            assert!(cands.contains(&RowMapping::for_manufacturer(mfr)), "{mfr}");
        }
    }
}
