//! Worst-case data pattern identification (§4.2, Table 1): test every
//! pattern on a row sample and keep the one producing the most bit
//! flips.

use crate::config::Scale;
use crate::error::CharError;
use rh_dram::{BankId, DataPattern, PatternKind, RowAddr, RowMapping};
use rh_softmc::TestBench;
use serde::{Deserialize, Serialize};

/// BER hammer count used during pattern identification (the standard
/// 150 K of §4.2).
const WCDP_HAMMERS: u64 = 150_000;

/// Flip totals of one candidate pattern over the sample rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternScore {
    /// The candidate pattern.
    pub kind: PatternKind,
    /// Total victim-row flips over the sample.
    pub flips: u64,
}

/// Preferred sample start/stride from the paper's practice: rows near
/// the bank interior, spaced so radius-2 neighborhoods never overlap.
const PREFERRED_BASE: u32 = 1024;
const PREFERRED_STRIDE: u32 = 6;

/// Derives the victim-row sample for pattern scoring from the bank
/// geometry: every victim keeps its whole write neighborhood
/// (`victim ± radius`, which covers both aggressors) inside the bank.
/// The preferred base/stride is kept whenever it fits so results stay
/// comparable across modules; otherwise the sample is re-fitted to the
/// valid range.
///
/// # Errors
///
/// [`CharError::SampleInfeasible`] when the bank cannot hold
/// `scale.wcdp_rows()` distinct victims with their neighborhoods.
pub fn victim_sample(rows_per_bank: u32, scale: Scale) -> Result<Vec<RowAddr>, CharError> {
    let radius = scale.neighborhood_radius();
    let count = scale.wcdp_rows();
    let infeasible =
        CharError::SampleInfeasible { rows_per_bank, victims: count, radius };
    let lo = radius;
    let hi = rows_per_bank
        .checked_sub(radius + 1)
        .filter(|&h| h >= lo && h - lo >= count.saturating_sub(1))
        .ok_or(infeasible)?;
    let preferred_end =
        u64::from(PREFERRED_BASE) + u64::from(PREFERRED_STRIDE) * u64::from(count - 1);
    let (base, stride) = if PREFERRED_BASE >= lo && preferred_end <= u64::from(hi) {
        (PREFERRED_BASE, PREFERRED_STRIDE)
    } else {
        let stride = if count > 1 {
            ((hi - lo) / (count - 1)).clamp(1, PREFERRED_STRIDE)
        } else {
            PREFERRED_STRIDE
        };
        (lo, stride)
    };
    Ok((0..count).map(|i| RowAddr(base + stride * i)).collect())
}

/// Scores all seven Table-1 patterns on a sample of victim rows.
///
/// # Errors
///
/// Device errors from hammering/reads, or
/// [`CharError::SampleInfeasible`] when the module geometry cannot
/// hold the scale's victim sample.
pub fn score_patterns(
    bench: &mut TestBench,
    mapping: &RowMapping,
    bank: BankId,
    scale: Scale,
) -> Result<Vec<PatternScore>, CharError> {
    let row_bytes = bench.module().row_bytes();
    let radius = scale.neighborhood_radius() as i64;
    let seed = bench.module_seed();
    let victims = victim_sample(bench.module().geometry().rows_per_bank, scale)?;
    let mut scores = Vec::with_capacity(PatternKind::ALL.len());
    for kind in PatternKind::ALL {
        let pattern = DataPattern::new(kind, seed);
        let mut flips = 0u64;
        for &victim in &victims {
            for d in -radius..=radius {
                let phys = RowAddr((victim.0 as i64 + d) as u32);
                let logical = mapping.physical_to_logical(phys);
                let fill = pattern.row_fill(phys, d, row_bytes);
                bench.module_mut().write_row_direct(bank, logical, &fill)?;
            }
            let left = mapping.physical_to_logical(RowAddr(victim.0 - 1));
            let right = mapping.physical_to_logical(RowAddr(victim.0 + 1));
            bench.hammer_double_sided(bank, left, right, WCDP_HAMMERS, None, None)?;
            let logical = mapping.physical_to_logical(victim);
            let read = bench.module_mut().read_row_direct(bank, logical)?;
            let expect = pattern.row_fill(victim, 0, row_bytes);
            flips += read
                .iter()
                .zip(&expect)
                .map(|(a, b)| u64::from((a ^ b).count_ones()))
                .sum::<u64>();
        }
        scores.push(PatternScore { kind, flips });
    }
    Ok(scores)
}

/// Identifies the module's worst-case data pattern (§4.2).
///
/// # Errors
///
/// Device errors from hammering/reads, or
/// [`CharError::SampleInfeasible`] from the victim sampling.
pub fn find_wcdp(
    bench: &mut TestBench,
    mapping: &RowMapping,
    bank: BankId,
    scale: Scale,
) -> Result<DataPattern, CharError> {
    let scores = score_patterns(bench, mapping, bank, scale)?;
    let best = scores.iter().max_by_key(|s| s.flips).ok_or_else(|| {
        CharError::Infra(rh_softmc::SoftMcError::InvalidProgram {
            reason: "pattern scoring produced no candidates".into(),
        })
    })?;
    Ok(DataPattern::new(best.kind, bench.module_seed()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rh_dram::Manufacturer;

    #[test]
    fn wcdp_matches_cell_orientation_majority() {
        // Mfr. C has 66 % anti-cells (flips 0→1): the worst-case victim
        // fill should store zeros in the victim row — rowstripe (0x00
        // at even distances) should beat its complement. Aggregated
        // over several modules to wash out small-sample noise.
        let mapping = RowMapping::for_manufacturer(Manufacturer::C);
        let (mut zero_heavy, mut one_heavy, mut best_total) = (0u64, 0u64, 0u64);
        for seed in [4u64, 5, 6, 7] {
            let mut bench = TestBench::new(Manufacturer::C, seed);
            bench.set_temperature(75.0).unwrap();
            let scores = score_patterns(&mut bench, &mapping, BankId(0), Scale::Smoke).unwrap();
            zero_heavy +=
                scores.iter().find(|s| s.kind == PatternKind::Rowstripe).unwrap().flips;
            one_heavy +=
                scores.iter().find(|s| s.kind == PatternKind::RowstripeInv).unwrap().flips;
            best_total += scores.iter().map(|s| s.flips).max().unwrap();
        }
        assert!(
            zero_heavy >= one_heavy,
            "rowstripe {zero_heavy} < complement {one_heavy} across modules"
        );
        assert!(best_total > 0, "no pattern flipped anything across four modules");
    }

    #[test]
    fn sample_keeps_preferred_rows_when_they_fit() {
        // DDR4 banks (32 K/64 K rows) comfortably hold the preferred
        // base-1024 stride-6 sample at every scale.
        for scale in [Scale::Smoke, Scale::Default, Scale::Paper] {
            let sample = victim_sample(32_768, scale).unwrap();
            assert_eq!(sample.len(), scale.wcdp_rows() as usize);
            assert_eq!(sample[0], RowAddr(1024));
            assert_eq!(sample[1], RowAddr(1030));
        }
    }

    #[test]
    fn sample_refits_into_small_banks() {
        // 64-row bank: base 1024 is out of range, so the sample must be
        // re-fitted; every victim's radius-2 neighborhood stays inside.
        let sample = victim_sample(64, Scale::Smoke).unwrap();
        assert_eq!(sample.len(), Scale::Smoke.wcdp_rows() as usize);
        let radius = Scale::Smoke.neighborhood_radius();
        let distinct: std::collections::HashSet<_> = sample.iter().collect();
        assert_eq!(distinct.len(), sample.len(), "victims must be distinct");
        for v in &sample {
            assert!(v.0 >= radius, "row {} underflows its neighborhood", v.0);
            assert!(v.0 + radius < 64, "row {} overflows the bank", v.0);
        }
    }

    #[test]
    fn impossible_geometry_is_rejected() {
        // A bank smaller than one neighborhood, and one too small for
        // 64 distinct Paper-scale victims with radius-8 neighborhoods.
        assert!(matches!(
            victim_sample(4, Scale::Smoke),
            Err(CharError::SampleInfeasible { rows_per_bank: 4, victims: 4, radius: 2 })
        ));
        assert!(matches!(
            victim_sample(70, Scale::Paper),
            Err(CharError::SampleInfeasible { .. })
        ));
    }

    #[test]
    fn scores_cover_all_patterns() {
        let mut bench = TestBench::new(Manufacturer::B, 5);
        bench.set_temperature(75.0).unwrap();
        let mapping = RowMapping::for_manufacturer(Manufacturer::B);
        let scores = score_patterns(&mut bench, &mapping, BankId(0), Scale::Smoke).unwrap();
        assert_eq!(scores.len(), 7);
        let kinds: std::collections::HashSet<_> = scores.iter().map(|s| s.kind).collect();
        assert_eq!(kinds.len(), 7);
    }
}
