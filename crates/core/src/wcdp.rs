//! Worst-case data pattern identification (§4.2, Table 1): test every
//! pattern on a row sample and keep the one producing the most bit
//! flips.

use crate::config::Scale;
use crate::error::CharError;
use rh_dram::{BankId, DataPattern, PatternKind, RowAddr, RowMapping};
use rh_softmc::TestBench;
use serde::{Deserialize, Serialize};

/// BER hammer count used during pattern identification (the standard
/// 150 K of §4.2).
const WCDP_HAMMERS: u64 = 150_000;

/// Flip totals of one candidate pattern over the sample rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternScore {
    /// The candidate pattern.
    pub kind: PatternKind,
    /// Total victim-row flips over the sample.
    pub flips: u64,
}

/// Scores all seven Table-1 patterns on a sample of victim rows.
///
/// # Errors
///
/// Device errors from hammering/reads.
pub fn score_patterns(
    bench: &mut TestBench,
    mapping: &RowMapping,
    bank: BankId,
    scale: Scale,
) -> Result<Vec<PatternScore>, CharError> {
    let row_bytes = bench.module().row_bytes();
    let radius = scale.neighborhood_radius() as i64;
    let seed = bench.module_seed();
    let mut scores = Vec::with_capacity(PatternKind::ALL.len());
    for kind in PatternKind::ALL {
        let pattern = DataPattern::new(kind, seed);
        let mut flips = 0u64;
        for i in 0..scale.wcdp_rows() {
            let victim = RowAddr(1024 + 6 * i);
            for d in -radius..=radius {
                let phys = RowAddr((victim.0 as i64 + d) as u32);
                let logical = mapping.physical_to_logical(phys);
                let fill = pattern.row_fill(phys, d, row_bytes);
                bench.module_mut().write_row_direct(bank, logical, &fill)?;
            }
            let left = mapping.physical_to_logical(RowAddr(victim.0 - 1));
            let right = mapping.physical_to_logical(RowAddr(victim.0 + 1));
            bench.hammer_double_sided(bank, left, right, WCDP_HAMMERS, None, None)?;
            let logical = mapping.physical_to_logical(victim);
            let read = bench.module_mut().read_row_direct(bank, logical)?;
            let expect = pattern.row_fill(victim, 0, row_bytes);
            flips += read
                .iter()
                .zip(&expect)
                .map(|(a, b)| u64::from((a ^ b).count_ones()))
                .sum::<u64>();
        }
        scores.push(PatternScore { kind, flips });
    }
    Ok(scores)
}

/// Identifies the module's worst-case data pattern (§4.2).
///
/// # Errors
///
/// Device errors from hammering/reads.
pub fn find_wcdp(
    bench: &mut TestBench,
    mapping: &RowMapping,
    bank: BankId,
    scale: Scale,
) -> Result<DataPattern, CharError> {
    let scores = score_patterns(bench, mapping, bank, scale)?;
    let best = scores.iter().max_by_key(|s| s.flips).ok_or_else(|| {
        CharError::Infra(rh_softmc::SoftMcError::InvalidProgram {
            reason: "pattern scoring produced no candidates".into(),
        })
    })?;
    Ok(DataPattern::new(best.kind, bench.module_seed()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rh_dram::Manufacturer;

    #[test]
    fn wcdp_matches_cell_orientation_majority() {
        // Mfr. C has 66 % anti-cells (flips 0→1): the worst-case victim
        // fill should store zeros in the victim row — rowstripe (0x00
        // at even distances) should beat its complement. Aggregated
        // over several modules to wash out small-sample noise.
        let mapping = RowMapping::for_manufacturer(Manufacturer::C);
        let (mut zero_heavy, mut one_heavy, mut best_total) = (0u64, 0u64, 0u64);
        for seed in [4u64, 5, 6, 7] {
            let mut bench = TestBench::new(Manufacturer::C, seed);
            bench.set_temperature(75.0).unwrap();
            let scores = score_patterns(&mut bench, &mapping, BankId(0), Scale::Smoke).unwrap();
            zero_heavy +=
                scores.iter().find(|s| s.kind == PatternKind::Rowstripe).unwrap().flips;
            one_heavy +=
                scores.iter().find(|s| s.kind == PatternKind::RowstripeInv).unwrap().flips;
            best_total += scores.iter().map(|s| s.flips).max().unwrap();
        }
        assert!(
            zero_heavy >= one_heavy,
            "rowstripe {zero_heavy} < complement {one_heavy} across modules"
        );
        assert!(best_total > 0, "no pattern flipped anything across four modules");
    }

    #[test]
    fn scores_cover_all_patterns() {
        let mut bench = TestBench::new(Manufacturer::B, 5);
        bench.set_temperature(75.0).unwrap();
        let mapping = RowMapping::for_manufacturer(Manufacturer::B);
        let scores = score_patterns(&mut bench, &mapping, BankId(0), Scale::Smoke).unwrap();
        assert_eq!(scores.len(), 7);
        let kinds: std::collections::HashSet<_> = scores.iter().map(|s| s.kind).collect();
        assert_eq!(kinds.len(), 7);
    }
}
