//! Programmatic checks of the paper's sixteen observations against
//! regenerated experiment data. Each check returns an
//! [`ObservationCheck`] carrying the measured quantity so reports can
//! print paper-vs-measured side by side.

use crate::experiments::rowactive::RowActiveAnalysis;
use crate::experiments::spatial::{ColumnMap, ColumnVariation, RowVariation, SimilarityCdf, SubarrayPoint};
use crate::experiments::temperature::{BerVsTemperature, HcFirstVsTemperature, TempRangeAnalysis};
use serde::{Deserialize, Serialize};

/// The outcome of checking one paper observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservationCheck {
    /// Observation number (1–16, as in the paper).
    pub id: u8,
    /// One-line statement of the observation.
    pub statement: &'static str,
    /// Whether the regenerated data supports it.
    pub passed: bool,
    /// The measured quantity backing the verdict.
    pub detail: String,
}

fn check(id: u8, statement: &'static str, passed: bool, detail: String) -> ObservationCheck {
    ObservationCheck { id, statement, passed, detail }
}

/// Obsv. 1: cells flip at every temperature point within their range
/// (the paper: 98–99.2 % with no gaps).
pub fn obsv1(a: &TempRangeAnalysis) -> ObservationCheck {
    check(
        1,
        "cells are vulnerable in a continuous temperature range",
        a.no_gap_fraction >= 0.95,
        format!("no-gap fraction {:.1}%", a.no_gap_fraction * 100.0),
    )
}

/// Obsv. 2: a significant fraction of cells flip at all tested
/// temperatures (the paper: 9.6–29.8 %).
pub fn obsv2(a: &TempRangeAnalysis) -> ObservationCheck {
    check(
        2,
        "a significant fraction of cells is vulnerable at all tested temperatures",
        a.full_range_fraction >= 0.05,
        format!("full-range fraction {:.1}%", a.full_range_fraction * 100.0),
    )
}

/// Obsv. 3: some cells are vulnerable only in a narrow (≤5 °C) range.
pub fn obsv3(a: &TempRangeAnalysis) -> ObservationCheck {
    check(
        3,
        "some cells are vulnerable only in a narrow temperature range",
        a.narrow_fraction > 0.0,
        format!("single-grid-point fraction {:.2}%", a.narrow_fraction * 100.0),
    )
}

/// Obsv. 4: the BER temperature trend is manufacturer-dependent
/// (checks that this module's victim-row trend is significant in
/// either direction).
pub fn obsv4(f: &BerVsTemperature) -> ObservationCheck {
    let victim = &f.series[1];
    let last = victim.change_pct.last().map(|c| c.center).unwrap_or(0.0);
    check(
        4,
        "BER changes with temperature (direction depends on manufacturer)",
        last.abs() > 5.0,
        format!("BER change at 90C vs 50C: {last:+.1}%"),
    )
}

/// Obsv. 5: rows show both higher and lower HCfirst as temperature
/// rises.
pub fn obsv5(f: &HcFirstVsTemperature) -> ObservationCheck {
    let both = f.crossing_90 > 0.0 && f.crossing_90 < 100.0;
    check(
        5,
        "rows can show either higher or lower HCfirst when temperature increases",
        both,
        format!("{:.0}% of rows increased HCfirst at 90C", f.crossing_90),
    )
}

/// Obsv. 6: HCfirst tends to decrease for larger temperature deltas
/// (crossing percentile shifts left from ΔT=5 to ΔT=40).
pub fn obsv6(f: &HcFirstVsTemperature) -> ObservationCheck {
    check(
        6,
        "HCfirst tends to decrease as the temperature change grows",
        f.crossing_90 <= f.crossing_55 + 10.0,
        format!("crossing P{:.0} (ΔT=5) vs P{:.0} (ΔT=40)", f.crossing_55, f.crossing_90),
    )
}

/// Obsv. 7: the HCfirst change magnitude grows with the temperature
/// delta (the paper: ≈4×).
pub fn obsv7(f: &HcFirstVsTemperature) -> ObservationCheck {
    check(
        7,
        "larger temperature change causes larger HCfirst change",
        f.magnitude_ratio > 1.5,
        format!("cumulative |change| ratio ΔT40/ΔT5 = {:.1}x", f.magnitude_ratio),
    )
}

/// Obsv. 8: longer tAggOn → more flips at lower hammer counts.
pub fn obsv8(a: &RowActiveAnalysis) -> ObservationCheck {
    check(
        8,
        "longer aggressor on-time increases BER and reduces HCfirst",
        a.ber_gain_on() > 1.5 && a.hc_reduction_on() > 0.1,
        format!("BER x{:.1}, HCfirst -{:.1}%", a.ber_gain_on(), a.hc_reduction_on() * 100.0),
    )
}

/// Obsv. 9: the worsening with tAggOn is consistent across rows (BER
/// CV does not grow).
pub fn obsv9(a: &RowActiveAnalysis) -> ObservationCheck {
    check(
        9,
        "vulnerability worsens consistently as tAggOn increases",
        a.ber_cv_change_on() < 0.25,
        format!("BER CV change {:+.0}%", a.ber_cv_change_on() * 100.0),
    )
}

/// Obsv. 10: longer tAggOff → fewer flips at higher hammer counts.
pub fn obsv10(a: &RowActiveAnalysis) -> ObservationCheck {
    check(
        10,
        "longer precharged time decreases BER and increases HCfirst",
        a.ber_drop_off() > 1.5 && a.hc_increase_off() > 0.1,
        format!("BER /{:.1}, HCfirst +{:.1}%", a.ber_drop_off(), a.hc_increase_off() * 100.0),
    )
}

/// Obsv. 11: the reduction with tAggOff is consistent across rows.
pub fn obsv11(a: &RowActiveAnalysis) -> ObservationCheck {
    let first = a.off_sweep.first().map(|p| rh_stats::coefficient_of_variation(&p.hc_first));
    let last = a.off_sweep.last().map(|p| rh_stats::coefficient_of_variation(&p.hc_first));
    let (f, l) = (first.unwrap_or(0.0), last.unwrap_or(0.0));
    check(
        11,
        "vulnerability reduction is consistent across rows as tAggOff increases",
        l <= f + 0.1,
        format!("HCfirst CV {f:.2} -> {l:.2}"),
    )
}

/// Obsv. 12: a small fraction of rows is much more vulnerable (the
/// paper: P99/P95/P90 at ≥1.6×/2.0×/2.2× the most vulnerable row).
pub fn obsv12(rv: &RowVariation) -> ObservationCheck {
    let p99 = rv.percentile_factor(99.0);
    let p95 = rv.percentile_factor(95.0);
    let p90 = rv.percentile_factor(90.0);
    check(
        12,
        "a small fraction of rows is significantly more vulnerable than the rest",
        p99 >= 1.2 && p95 >= 1.4,
        format!("P99 {p99:.1}x, P95 {p95:.1}x, P90 {p90:.1}x the most vulnerable row"),
    )
}

/// Obsv. 13: certain columns are much more vulnerable than others.
pub fn obsv13(cm: &ColumnMap) -> ObservationCheck {
    check(
        13,
        "certain columns are significantly more vulnerable than others",
        cm.max_count() >= 5,
        format!(
            "max column count {}, zero-flip columns {:.1}%",
            cm.max_count(),
            cm.zero_fraction() * 100.0
        ),
    )
}

/// Obsv. 14: both design- and process-induced variation exist
/// (columns with CV = 0 across chips, and columns with CV ≈ 1).
pub fn obsv14(cv: &ColumnVariation) -> ObservationCheck {
    check(
        14,
        "both design and manufacturing process affect a column's vulnerability",
        cv.cv_low_fraction > 0.0 || cv.cv_one_fraction > 0.0,
        format!(
            "low-CV columns {:.1}%, CV>=1 columns {:.1}%",
            cv.cv_low_fraction * 100.0,
            cv.cv_one_fraction * 100.0
        ),
    )
}

/// Obsv. 15: the most vulnerable row of a subarray is roughly 2× more
/// vulnerable than the subarray average.
pub fn obsv15(points: &[SubarrayPoint]) -> ObservationCheck {
    let ratios: Vec<f64> =
        points.iter().filter(|p| p.min > 0.0).map(|p| p.avg / p.min).collect();
    let mean = rh_stats::mean(&ratios);
    check(
        15,
        "the most vulnerable row in a subarray is far more vulnerable than the rest",
        mean >= 1.2,
        format!("avg/min HCfirst ratio {mean:.2} across {} subarrays", points.len()),
    )
}

/// Obsv. 16: subarray HCfirst distributions are more similar within a
/// module than across modules.
pub fn obsv16(sim: &SimilarityCdf) -> ObservationCheck {
    let statement =
        "subarray HCfirst distributions are similar within a module, diverse across modules";
    match (
        rh_stats::percentile(&sim.same_module, 5.0),
        rh_stats::percentile(&sim.cross_module, 5.0),
    ) {
        (Some(same), Some(cross)) => check(
            16,
            statement,
            same >= cross,
            format!("P5 BD_norm same-module {same:.3} vs cross-module {cross:.3}"),
        ),
        (same, _) => check(
            16,
            statement,
            false,
            format!(
                "insufficient pairs: same-module n={} cross-module n={} (P5 undefined for {})",
                sim.same_module.len(),
                sim.cross_module.len(),
                if same.is_none() { "same-module" } else { "cross-module" },
            ),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_carries_detail() {
        let a = TempRangeAnalysis {
            grid: vec![50.0],
            cluster_fraction: vec![vec![1.0]],
            no_gap_fraction: 0.99,
            one_gap_fraction: 0.01,
            narrow_fraction: 0.02,
            full_range_fraction: 0.2,
            vulnerable_cells: 100,
        };
        let c = obsv1(&a);
        assert!(c.passed);
        assert!(c.detail.contains("99.0%"));
        assert_eq!(c.id, 1);
        assert!(obsv2(&a).passed);
        assert!(obsv3(&a).passed);
    }

    #[test]
    fn failing_observation_reports_false() {
        let a = TempRangeAnalysis {
            grid: vec![50.0],
            cluster_fraction: vec![vec![1.0]],
            no_gap_fraction: 0.5,
            one_gap_fraction: 0.2,
            narrow_fraction: 0.0,
            full_range_fraction: 0.0,
            vulnerable_cells: 10,
        };
        assert!(!obsv1(&a).passed);
        assert!(!obsv3(&a).passed);
    }
}
