//! Live campaign progress: per-module slot accounting, a
//! throughput-based ETA, and periodic heartbeat publication.
//!
//! A [`ProgressTracker`] is shared (as an `Arc`) between a
//! [`CampaignRunner`](crate::campaign::CampaignRunner) — which admits
//! the module total, marks modules running via RAII guards, and
//! records terminal statuses from the executor's commit hook — and
//! whatever wants to watch the campaign: the telemetry server's
//! `/progress` endpoint, `repro top`, or a test. Every state change
//! also publishes the `campaign.progress.*` gauges and, rate-limited,
//! a `campaign.heartbeat` event, so the in-flight state is visible in
//! `/metrics`, the trace, and the rollup series without any extra
//! plumbing.
//!
//! The ETA is deliberately simple — remaining modules divided by the
//! observed completion throughput — and is [`None`] until the first
//! module completes, so there is never a NaN, an infinity, or a
//! made-up number on the wire.

use crate::campaign::ModuleStatus;
use rh_obs::names;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Throughput-based remaining-time estimate, as a pure function so it
/// can be tested without clocks: with `completed` of `total` modules
/// done after `elapsed_ms`, assumes the observed rate holds.
///
/// Returns `None` before the first completion (no rate to extrapolate
/// from — never a NaN or infinity), and `Some(0)` once everything is
/// done.
#[must_use]
pub fn eta_ms(completed: usize, total: usize, elapsed_ms: u64) -> Option<u64> {
    if completed == 0 {
        return if total == 0 { Some(0) } else { None };
    }
    if completed >= total {
        return Some(0);
    }
    let remaining = (total - completed) as u128;
    let per_module = u128::from(elapsed_ms);
    Some(u64::try_from(remaining * per_module / completed as u128).unwrap_or(u64::MAX))
}

#[derive(Debug, Default)]
struct Inner {
    total: usize,
    running: usize,
    succeeded: usize,
    recovered: usize,
    quarantined: usize,
    timed_out: usize,
    cancelled: usize,
    last_heartbeat: Option<Instant>,
}

impl Inner {
    fn completed(&self) -> usize {
        self.succeeded + self.recovered + self.quarantined + self.timed_out + self.cancelled
    }
}

/// Point-in-time view of a campaign's progress. `pending` is derived
/// (`total - completed - running`, floored at 0: a timed-out module's
/// worker may still be unwinding while its terminal status is already
/// counted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Modules admitted to the campaign.
    pub total: usize,
    /// Modules not yet started.
    pub pending: usize,
    /// Modules currently inside a worker.
    pub running: usize,
    /// Modules that succeeded first try.
    pub succeeded: usize,
    /// Modules that recovered after retries.
    pub recovered: usize,
    /// Modules quarantined after exhausting attempts.
    pub quarantined: usize,
    /// Modules timed out by the watchdog.
    pub timed_out: usize,
    /// Modules cancelled (queued or in flight).
    pub cancelled: usize,
    /// Wall time since the tracker was created, ms.
    pub elapsed_ms: u64,
    /// Estimated remaining wall time, ms; `None` until the first
    /// module completes.
    pub eta_ms: Option<u64>,
}

impl ProgressSnapshot {
    /// Modules with a terminal status (any outcome).
    #[must_use]
    pub fn completed(&self) -> usize {
        self.succeeded + self.recovered + self.quarantined + self.timed_out + self.cancelled
    }

    /// Whether every admitted module has a terminal status.
    #[must_use]
    pub fn done(&self) -> bool {
        self.completed() >= self.total
    }

    /// Renders the snapshot as the `/progress` JSON object (trailing
    /// newline included).
    #[must_use]
    pub fn to_json(&self) -> String {
        let eta = self.eta_ms.map_or_else(|| "null".to_string(), |e| e.to_string());
        format!(
            "{{\"total\":{},\"pending\":{},\"running\":{},\"succeeded\":{},\"recovered\":{},\
             \"quarantined\":{},\"timed_out\":{},\"cancelled\":{},\"completed\":{},\
             \"elapsed_ms\":{},\"eta_ms\":{eta},\"done\":{}}}\n",
            self.total,
            self.pending,
            self.running,
            self.succeeded,
            self.recovered,
            self.quarantined,
            self.timed_out,
            self.cancelled,
            self.completed(),
            self.elapsed_ms,
            self.done(),
        )
    }
}

/// Shared live-progress state for one or more campaigns. See the
/// [module docs](self).
#[derive(Debug)]
pub struct ProgressTracker {
    t0: Instant,
    heartbeat_interval: Duration,
    inner: Mutex<Inner>,
    /// Per-worker event-stream cursors (`worker -> (last_seq,
    /// acked_seq)`), published by the fleet coordinator's journal
    /// ingestion. Kept beside `Inner` so [`ProgressSnapshot`] stays
    /// `Copy`; `/progress` splices them in via [`Self::progress_json`].
    streams: Mutex<BTreeMap<String, (u64, u64)>>,
}

impl Default for ProgressTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgressTracker {
    /// An empty tracker; the clock for `elapsed_ms`/ETA starts now.
    /// Heartbeat events are rate-limited to one per second by default.
    #[must_use]
    pub fn new() -> Self {
        Self {
            t0: Instant::now(),
            heartbeat_interval: Duration::from_secs(1),
            inner: Mutex::new(Inner::default()),
            streams: Mutex::new(BTreeMap::new()),
        }
    }

    /// Overrides the minimum spacing between `campaign.heartbeat`
    /// events. Zero emits one on every state change.
    #[must_use]
    pub fn with_heartbeat_interval(mut self, interval: Duration) -> Self {
        self.heartbeat_interval = interval;
        self
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Admits `n` more modules. A tracker may serve several sequential
    /// campaigns (e.g. a multi-target `repro` run): totals accumulate.
    pub fn add_modules(&self, n: usize) {
        let mut inner = self.lock();
        inner.total = inner.total.saturating_add(n);
        self.publish(&mut inner);
    }

    /// Marks one module running until the returned guard drops. The
    /// guard is how worker unwinding (success, panic, or a discarded
    /// post-timeout result) always puts the slot back.
    pub fn running_guard(self: &Arc<Self>) -> RunningGuard {
        {
            let mut inner = self.lock();
            inner.running = inner.running.saturating_add(1);
            self.publish(&mut inner);
        }
        RunningGuard { tracker: Arc::clone(self) }
    }

    /// Records one module's terminal status. Call exactly once per
    /// module (the executor's commit hook has exactly that shape).
    pub fn record_status(&self, status: &ModuleStatus) {
        let mut inner = self.lock();
        match status {
            ModuleStatus::Succeeded => inner.succeeded += 1,
            ModuleStatus::Recovered { .. } => inner.recovered += 1,
            ModuleStatus::Quarantined { .. } => inner.quarantined += 1,
            ModuleStatus::TimedOut { .. } => inner.timed_out += 1,
            ModuleStatus::Cancelled { .. } => inner.cancelled += 1,
        }
        self.publish(&mut inner);
    }

    /// The current progress, with ETA derived from elapsed wall time.
    #[must_use]
    pub fn snapshot(&self) -> ProgressSnapshot {
        let elapsed_ms = self.elapsed_ms();
        let inner = self.lock();
        let completed = inner.completed();
        ProgressSnapshot {
            total: inner.total,
            pending: inner.total.saturating_sub(completed).saturating_sub(inner.running),
            running: inner.running,
            succeeded: inner.succeeded,
            recovered: inner.recovered,
            quarantined: inner.quarantined,
            timed_out: inner.timed_out,
            cancelled: inner.cancelled,
            elapsed_ms,
            eta_ms: eta_ms(completed, inner.total, elapsed_ms),
        }
    }

    fn elapsed_ms(&self) -> u64 {
        u64::try_from(self.t0.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Publishes one worker's event-stream cursor: the highest seq it
    /// has emitted and the highest seq the journal has durably
    /// ingested. The difference is that worker's journal lag.
    pub fn set_stream_cursor(&self, worker: &str, last_seq: u64, acked_seq: u64) {
        let mut streams = match self.streams.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        streams.insert(worker.to_string(), (last_seq, acked_seq));
    }

    /// Current `(worker, last_seq, acked_seq)` cursors, sorted by
    /// worker address. Empty for non-fleet campaigns.
    #[must_use]
    pub fn stream_cursors(&self) -> Vec<(String, u64, u64)> {
        let streams = match self.streams.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        streams.iter().map(|(w, &(l, a))| (w.clone(), l, a)).collect()
    }

    /// The `/progress` JSON body: [`ProgressSnapshot::to_json`] plus,
    /// when the coordinator has published any event-stream cursors, a
    /// `"streams"` array with per-worker journal lag. Non-fleet runs
    /// produce exactly the snapshot JSON, byte for byte.
    #[must_use]
    pub fn progress_json(&self) -> String {
        let base = self.snapshot().to_json();
        let cursors = self.stream_cursors();
        if cursors.is_empty() {
            return base;
        }
        let mut streams = String::from(",\"streams\":[");
        for (i, (worker, last_seq, acked_seq)) in cursors.iter().enumerate() {
            if i > 0 {
                streams.push(',');
            }
            let escaped: String = worker
                .chars()
                .flat_map(|c| match c {
                    '"' | '\\' => vec!['\\', c],
                    c => vec![c],
                })
                .collect();
            streams.push_str(&format!(
                "{{\"worker\":\"{escaped}\",\"last_seq\":{last_seq},\"acked_seq\":{acked_seq},\
                 \"lag\":{}}}",
                last_seq.saturating_sub(*acked_seq),
            ));
        }
        streams.push(']');
        // Splice before the closing `}` of the snapshot object.
        match base.rfind('}') {
            Some(pos) => {
                let mut out = base;
                out.insert_str(pos, &streams);
                out
            }
            None => base,
        }
    }

    /// Publishes the gauges unconditionally and a heartbeat event when
    /// one is due. Callers hold the lock, so the heartbeat timestamp
    /// update is race-free.
    fn publish(&self, inner: &mut Inner) {
        if !rh_obs::enabled() {
            return;
        }
        let completed = inner.completed();
        rh_obs::gauge(names::CAMPAIGN_PROGRESS_TOTAL, inner.total as f64);
        rh_obs::gauge(names::CAMPAIGN_PROGRESS_DONE, completed as f64);
        rh_obs::gauge(names::CAMPAIGN_PROGRESS_RUNNING, inner.running as f64);
        let elapsed_ms = self.elapsed_ms();
        let eta = eta_ms(completed, inner.total, elapsed_ms);
        if let Some(eta) = eta {
            rh_obs::gauge(names::CAMPAIGN_ETA_MS, eta as f64);
        }
        let due = inner
            .last_heartbeat
            .is_none_or(|last| last.elapsed() >= self.heartbeat_interval);
        if due {
            inner.last_heartbeat = Some(Instant::now());
            rh_obs::event!(
                names::CAMPAIGN_HEARTBEAT,
                done = completed,
                total = inner.total,
                running = inner.running,
                elapsed_ms = elapsed_ms,
                eta_ms = eta.map_or(-1i64, |e| i64::try_from(e).unwrap_or(i64::MAX)),
            );
        }
    }
}

/// RAII handle from [`ProgressTracker::running_guard`]; decrements the
/// running count on drop.
#[derive(Debug)]
pub struct RunningGuard {
    tracker: Arc<ProgressTracker>,
}

impl Drop for RunningGuard {
    fn drop(&mut self) {
        let mut inner = self.tracker.lock();
        inner.running = inner.running.saturating_sub(1);
        self.tracker.publish(&mut inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_is_none_at_zero_completed_and_never_nan() {
        assert_eq!(eta_ms(0, 10, 5_000), None);
        assert_eq!(eta_ms(0, 0, 5_000), Some(0));
        assert_eq!(eta_ms(10, 10, 5_000), Some(0));
        assert_eq!(eta_ms(12, 10, 5_000), Some(0), "overshoot clamps to done");
    }

    #[test]
    fn eta_decreases_monotonically_under_steady_throughput() {
        // One module per 700 ms, 40 modules: after k completions the
        // estimate must never increase.
        let total = 40;
        let per_module_ms = 700u64;
        let mut last = u64::MAX;
        for k in 1..=total {
            let eta = eta_ms(k, total, k as u64 * per_module_ms)
                .unwrap_or_else(|| panic!("eta None at {k} completed"));
            assert!(eta <= last, "eta rose from {last} to {eta} at {k}/{total}");
            assert_eq!(eta, (total - k) as u64 * per_module_ms);
            last = eta;
        }
        assert_eq!(last, 0);
    }

    #[test]
    fn eta_does_not_overflow_on_extreme_inputs() {
        assert_eq!(eta_ms(1, usize::MAX, u64::MAX), Some(u64::MAX));
    }

    #[test]
    fn terminal_statuses_are_accounted_exactly_once() {
        let tracker = Arc::new(ProgressTracker::new());
        tracker.add_modules(5);
        {
            let _g = tracker.running_guard();
            assert_eq!(tracker.snapshot().running, 1);
            assert_eq!(tracker.snapshot().pending, 4);
        }
        assert_eq!(tracker.snapshot().running, 0);
        tracker.record_status(&ModuleStatus::Succeeded);
        tracker.record_status(&ModuleStatus::Recovered { attempts: 2 });
        tracker.record_status(&ModuleStatus::Quarantined {
            attempts: 3,
            error: "host link".into(),
        });
        tracker.record_status(&ModuleStatus::TimedOut { elapsed_ms: 9000, deadline_ms: 8000 });
        tracker.record_status(&ModuleStatus::Cancelled { attempts: 0 });
        let snap = tracker.snapshot();
        assert_eq!(
            (snap.succeeded, snap.recovered, snap.quarantined, snap.timed_out, snap.cancelled),
            (1, 1, 1, 1, 1)
        );
        assert_eq!(snap.completed(), 5);
        assert_eq!(snap.pending, 0);
        assert!(snap.done());
        assert_eq!(snap.eta_ms, Some(0));
    }

    #[test]
    fn pending_floors_at_zero_while_a_timed_out_worker_unwinds() {
        let tracker = Arc::new(ProgressTracker::new());
        tracker.add_modules(1);
        let guard = tracker.running_guard();
        // Watchdog decision lands while the worker is still running.
        tracker.record_status(&ModuleStatus::TimedOut { elapsed_ms: 2, deadline_ms: 1 });
        let snap = tracker.snapshot();
        assert_eq!(snap.pending, 0);
        assert_eq!(snap.running, 1);
        assert!(snap.done());
        drop(guard);
        assert_eq!(tracker.snapshot().running, 0);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let tracker = Arc::new(ProgressTracker::new());
        tracker.add_modules(3);
        tracker.record_status(&ModuleStatus::Succeeded);
        let json = tracker.snapshot().to_json();
        assert!(json.starts_with("{\"total\":3,"));
        assert!(json.contains("\"succeeded\":1"));
        assert!(json.contains("\"completed\":1"));
        assert!(json.contains("\"done\":false"));
        assert!(json.ends_with("}\n"));
        // Before any completion the ETA serializes as null, not NaN.
        let fresh = Arc::new(ProgressTracker::new());
        fresh.add_modules(2);
        assert!(fresh.snapshot().to_json().contains("\"eta_ms\":null"));
    }

    #[test]
    fn progress_json_splices_stream_cursors_only_when_present() {
        let tracker = Arc::new(ProgressTracker::new());
        tracker.add_modules(1);
        let plain = tracker.progress_json();
        assert_eq!(plain, tracker.snapshot().to_json(), "non-fleet runs are unchanged");
        tracker.set_stream_cursor("127.0.0.1:9002", 12, 9);
        tracker.set_stream_cursor("127.0.0.1:9001", 4, 4);
        let json = tracker.progress_json();
        assert!(json.ends_with("}\n"), "{json}");
        let streams_at = json.find(",\"streams\":[").unwrap_or_else(|| panic!("{json}"));
        let w1 = json.find("{\"worker\":\"127.0.0.1:9001\",\"last_seq\":4,\"acked_seq\":4,\"lag\":0}");
        let w2 = json.find("{\"worker\":\"127.0.0.1:9002\",\"last_seq\":12,\"acked_seq\":9,\"lag\":3}");
        assert!(w1.is_some() && w2.is_some(), "{json}");
        assert!(streams_at < w1.unwrap() && w1 < w2, "sorted by worker: {json}");
        // Re-publishing a cursor replaces, not appends.
        tracker.set_stream_cursor("127.0.0.1:9001", 8, 8);
        assert_eq!(tracker.stream_cursors().len(), 2);
    }

    #[test]
    fn totals_accumulate_across_campaigns() {
        let tracker = Arc::new(ProgressTracker::new());
        tracker.add_modules(2);
        tracker.record_status(&ModuleStatus::Succeeded);
        tracker.record_status(&ModuleStatus::Succeeded);
        assert!(tracker.snapshot().done());
        tracker.add_modules(3);
        let snap = tracker.snapshot();
        assert_eq!(snap.total, 5);
        assert!(!snap.done());
        assert_eq!(snap.pending, 3);
    }
}
