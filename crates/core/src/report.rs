//! Plain-text rendering of every regenerated table and figure, in the
//! same rows/series layout the paper reports.

use crate::experiments::rowactive::RowActiveAnalysis;
use crate::experiments::spatial::{
    ColumnMap, ColumnVariation, RowVariation, SimilarityCdf, SubarrayPoint,
};
use crate::experiments::temperature::{
    BerVsTemperature, HcFirstVsTemperature, TempRangeAnalysis,
};
use crate::observations::ObservationCheck;
use rh_dram::{tested_modules, DramStandard, PatternKind};
use rh_stats::{Ecdf, LinearFit};
use std::fmt::Write as _;

/// Table 1: the data patterns.
pub fn table1() -> String {
    let mut s = String::from(
        "Table 1: Data patterns used in the RowHammer analyses\n\
         row address        colstripe  checkered  rowstripe  random\n",
    );
    let _ = writeln!(s, "V +- [0,2,4,6,8]   0x55       0x55       0x00       random");
    let _ = writeln!(s, "V +- [1,3,5,7]     0x55       0xaa       0xff       random");
    let _ = writeln!(s, "(complements of the first three are also tested)");
    let _ = writeln!(
        s,
        "patterns: {}",
        PatternKind::ALL.map(|p| p.name()).join(", ")
    );
    s
}

/// Tables 2 and 4: the tested-module population.
pub fn table2() -> String {
    let mut s = String::from(
        "Table 2/4: Tested DRAM modules\n\
         label    mfr     std   chips  density  die  org  freq  date\n",
    );
    for m in tested_modules() {
        let _ = writeln!(
            s,
            "{:8} {:7} {:5} {:6} {:8} {:4} {:4} {:5} {}",
            m.label,
            m.manufacturer.to_string(),
            match m.standard {
                DramStandard::Ddr4 => "DDR4",
                DramStandard::Ddr3 => "DDR3",
            },
            m.chips,
            m.density.to_string(),
            m.die_revision,
            m.org.to_string(),
            m.freq_mts,
            m.date_code,
        );
    }
    s
}

/// Table 3: percentage of vulnerable cells flipping at all temperature
/// points within their range, per manufacturer.
pub fn table3(per_mfr: &[(&str, &TempRangeAnalysis)]) -> String {
    let mut s = String::from(
        "Table 3: vulnerable cells flipping at ALL temperature points in their range\n",
    );
    for (label, a) in per_mfr {
        let _ = writeln!(
            s,
            "{label}: {:.1}%  (1 gap: {:.2}%, cells observed: {})",
            a.no_gap_fraction * 100.0,
            a.one_gap_fraction * 100.0,
            a.vulnerable_cells
        );
    }
    s
}

/// Fig. 3: the vulnerable-temperature-range population grid of one
/// manufacturer.
pub fn fig3(label: &str, a: &TempRangeAnalysis) -> String {
    let n = a.grid.len();
    let mut s = format!(
        "Fig. 3 ({label}): population by vulnerable temperature range\n\
         rows = upper limit, cols = lower limit (°C); % of vulnerable cells\n      "
    );
    for t in &a.grid {
        let _ = write!(s, "{:>6.0}", t);
    }
    s.push('\n');
    for hi in (0..n).rev() {
        let _ = write!(s, "{:>5.0} ", a.grid[hi]);
        for lo in 0..n {
            if lo > hi {
                let _ = write!(s, "{:>6}", "");
            } else {
                let f = a.cluster_fraction[lo][hi] * 100.0;
                if f == 0.0 {
                    let _ = write!(s, "{:>6}", ".");
                } else {
                    let _ = write!(s, "{:>6.1}", f);
                }
            }
        }
        s.push('\n');
    }
    let _ = writeln!(
        s,
        "no gaps: {:.2}%  1 gap: {:.2}%  narrow(<=5C): {:.2}%  all-temps: {:.1}%",
        a.no_gap_fraction * 100.0,
        a.one_gap_fraction * 100.0,
        a.narrow_fraction * 100.0,
        a.full_range_fraction * 100.0
    );
    s
}

/// Fig. 4: BER percentage change with temperature, distances −2/0/+2.
pub fn fig4(label: &str, f: &BerVsTemperature) -> String {
    let mut s = format!("Fig. 4 ({label}): BER change vs 50°C (mean [95% CI])\n temp  ");
    for d in &f.series {
        let _ = write!(s, "      dist {:+}        ", d.distance);
    }
    s.push('\n');
    for (i, t) in f.grid.iter().enumerate() {
        let _ = write!(s, "{:>5.0}C", t);
        for d in &f.series {
            let c = &d.change_pct[i];
            let _ = write!(s, "  {:+7.1}% [{:+6.1},{:+6.1}]", c.center, c.lo, c.hi);
        }
        s.push('\n');
    }
    s
}

/// Fig. 5: HCfirst change distribution with temperature.
pub fn fig5(label: &str, f: &HcFirstVsTemperature) -> String {
    let mut s = format!("Fig. 5 ({label}): HCfirst change across rows\n");
    let _ = writeln!(
        s,
        "50->55°C: {} rows, zero-crossing at P{:.0}",
        f.change_50_to_55.len(),
        f.crossing_55
    );
    let _ = writeln!(
        s,
        "50->90°C: {} rows, zero-crossing at P{:.0}",
        f.change_50_to_90.len(),
        f.crossing_90
    );
    let _ = writeln!(s, "cumulative |change| ratio (ΔT=40 / ΔT=5): {:.1}x", f.magnitude_ratio);
    for (name, c) in [("50->55", &f.change_50_to_55), ("50->90", &f.change_50_to_90)] {
        let (Some(max), Some(min)) = (c.first(), c.last()) else {
            continue;
        };
        // Non-empty is guaranteed by the guard above; NaN would flag a
        // broken invariant instead of printing a fake zero.
        let _ = writeln!(
            s,
            "{name}: max {:+.1}%  median {:+.1}%  min {:+.1}%",
            max,
            rh_stats::median(c).unwrap_or(f64::NAN),
            min
        );
    }
    s
}

/// Figs. 7/9: BER distributions across a timing sweep (box plots).
pub fn fig_ber_sweep(figure: &str, label: &str, a: &RowActiveAnalysis, on: bool) -> String {
    let sweep = if on { &a.on_sweep } else { &a.off_sweep };
    let name = if on { "tAggOn" } else { "tAggOff" };
    let mut s = format!("{figure} ({label}): bit flips per row vs {name}\n");
    let _ = writeln!(s, "{:>9}  {:>8} {:>8} {:>8} {:>8} {:>8}  mean", name, "lo", "q1", "med", "q3", "hi");
    for p in sweep {
        let b = &p.ber_box;
        let _ = writeln!(
            s,
            "{:>7.1}ns  {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}  {:.1}",
            p.timing as f64 / 1000.0,
            b.whisker_lo,
            b.q1,
            b.median,
            b.q3,
            b.whisker_hi,
            p.mean_ber()
        );
    }
    if on {
        let _ = writeln!(s, "BER gain at max tAggOn: {:.1}x", a.ber_gain_on());
    } else {
        let _ = writeln!(s, "BER drop at max tAggOff: {:.1}x", a.ber_drop_off());
    }
    s
}

/// Figs. 8/10: HCfirst distributions across a timing sweep
/// (letter-value plots).
pub fn fig_hc_sweep(figure: &str, label: &str, a: &RowActiveAnalysis, on: bool) -> String {
    let sweep = if on { &a.on_sweep } else { &a.off_sweep };
    let name = if on { "tAggOn" } else { "tAggOff" };
    let mut s = format!("{figure} ({label}): HCfirst vs {name}\n");
    let _ = writeln!(s, "{:>9}  {:>9} {:>9} {:>9}  boxes", name, "oct-lo", "median", "oct-hi");
    for p in sweep {
        let lv = &p.hc_letter;
        let (olo, ohi) = lv
            .boxes
            .get(1)
            .map(|b| (b.lower, b.upper))
            .or_else(|| lv.boxes.first().map(|b| (b.lower, b.upper)))
            .unwrap_or((0.0, 0.0));
        let _ = writeln!(
            s,
            "{:>7.1}ns  {:>9.0} {:>9.0} {:>9.0}  {}",
            p.timing as f64 / 1000.0,
            olo,
            lv.median,
            ohi,
            lv.boxes.len()
        );
    }
    if on {
        let _ = writeln!(s, "HCfirst reduction at max tAggOn: {:.1}%", a.hc_reduction_on() * 100.0);
    } else {
        let _ = writeln!(s, "HCfirst increase at max tAggOff: {:.1}%", a.hc_increase_off() * 100.0);
    }
    s
}

/// Fig. 11: the per-row HCfirst distribution of one module.
pub fn fig11(label: &str, rv: &RowVariation) -> String {
    let mut s = format!("Fig. 11 ({label}): HCfirst across rows (sorted descending)\n");
    let _ = writeln!(s, "vulnerable rows: {}", rv.rows.len());
    if rv.sorted_desc.is_empty() {
        let _ = writeln!(s, "no vulnerable rows below the search cap; percentiles unavailable");
        return s;
    }
    let _ = writeln!(s, "min HCfirst: {:.0}", rv.min_hc());
    for p in [1.0, 5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0] {
        let _ = writeln!(
            s,
            "P{:<3.0} {:>9.0}  ({:.2}x min)",
            p,
            rh_stats::percentile(&rv.sorted_desc, 100.0 - p).unwrap_or(f64::NAN),
            rv.percentile_factor(p)
        );
    }
    s
}

/// Fig. 12: summary of the per-chip column flip map.
pub fn fig12(label: &str, cm: &ColumnMap) -> String {
    let mut s = format!("Fig. 12 ({label}): bit flips across columns\n");
    let _ = writeln!(s, "zero-flip chip-columns: {:.2}%", cm.zero_fraction() * 100.0);
    let _ = writeln!(s, "max flips in one chip-column: {}", cm.max_count());
    for (chip, cols) in cm.counts.iter().enumerate() {
        let total: u64 = cols.iter().sum();
        let nz = cols.iter().filter(|&&c| c > 0).count();
        let _ = writeln!(s, "chip {chip}: {total:>6} flips across {nz:>4} columns");
    }
    s
}

/// Fig. 13: the column relative-vulnerability vs cross-chip-CV grid.
pub fn fig13(label: &str, cv: &ColumnVariation) -> String {
    let mut s = format!(
        "Fig. 13 ({label}): columns by relative vulnerability (rows) vs CV across chips (cols)\n"
    );
    for y in (0..cv.hist.ybins()).rev() {
        let _ = write!(s, "{:>4.1} ", (y as f64 + 0.5) / cv.hist.ybins() as f64);
        for x in 0..cv.hist.xbins() {
            let f = cv.hist.fraction(x, y) * 100.0;
            if f == 0.0 {
                let _ = write!(s, "{:>6}", ".");
            } else {
                let _ = write!(s, "{:>5.1}%", f);
            }
        }
        s.push('\n');
    }
    let _ = writeln!(
        s,
        "low-CV (design-consistent): {:.1}%   CV>=1 (process-dominated): {:.1}%",
        cv.cv_low_fraction * 100.0,
        cv.cv_one_fraction * 100.0
    );
    s
}

/// Fig. 14: per-subarray min-vs-avg HCfirst with the fitted line.
pub fn fig14(label: &str, points: &[SubarrayPoint], fit: Option<LinearFit>) -> String {
    let mut s = format!("Fig. 14 ({label}): subarray min vs avg HCfirst\n");
    for p in points.iter().take(24) {
        let _ = writeln!(s, "subarray {:>4}: avg {:>9.0}  min {:>9.0}", p.subarray, p.avg, p.min);
    }
    if points.len() > 24 {
        let _ = writeln!(s, "... ({} subarrays total)", points.len());
    }
    match fit {
        Some(f) => {
            let _ = writeln!(s, "fit: y = {:.2}x + {:.0}   R2: {:.2}", f.slope, f.intercept, f.r2);
        }
        None => {
            let _ = writeln!(s, "fit: insufficient points");
        }
    }
    s
}

/// Fig. 15: the BD_norm cumulative distributions.
pub fn fig15(label: &str, sim: &SimilarityCdf) -> String {
    let mut s = format!("Fig. 15 ({label}): normalized Bhattacharyya distance CDFs\n");
    for (name, xs) in [("same module", &sim.same_module), ("different modules", &sim.cross_module)]
    {
        if xs.is_empty() {
            let _ = writeln!(s, "{name}: no pairs");
            continue;
        }
        let e = Ecdf::new(xs.clone());
        let _ = writeln!(
            s,
            "{name}: n={:<4} P5 {:.3}  median {:.3}  P95 {:.3}",
            e.len(),
            rh_stats::percentile(xs, 5.0).unwrap_or(f64::NAN),
            rh_stats::median(xs).unwrap_or(f64::NAN),
            rh_stats::percentile(xs, 95.0).unwrap_or(f64::NAN),
        );
    }
    if !sim.same_module_ks.is_empty() && !sim.cross_module_ks.is_empty() {
        let _ = writeln!(
            s,
            "KS distance (median): same module {:.3}, different modules {:.3}",
            rh_stats::median(&sim.same_module_ks).unwrap_or(f64::NAN),
            rh_stats::median(&sim.cross_module_ks).unwrap_or(f64::NAN),
        );
    }
    s
}

/// Renders a list of observation checks.
pub fn observations(checks: &[ObservationCheck]) -> String {
    let mut s = String::from("Observation checks\n");
    for c in checks {
        let _ = writeln!(
            s,
            "Obsv.{:>2} [{}] {} — {}",
            c.id,
            if c.passed { "ok" } else { "FAIL" },
            c.statement,
            c.detail
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        let t1 = table1();
        assert!(t1.contains("colstripe"));
        assert!(t1.contains("0xaa"));
        let t2 = table2();
        assert!(t2.contains("A0"));
        assert!(t2.contains("DDR3"));
        assert!(t2.contains("Mfr. D"));
    }

    #[test]
    fn fig3_grid_renders_percentages() {
        let a = TempRangeAnalysis {
            grid: vec![50.0, 55.0],
            cluster_fraction: vec![vec![0.5, 0.25], vec![0.0, 0.25]],
            no_gap_fraction: 0.99,
            one_gap_fraction: 0.01,
            narrow_fraction: 0.75,
            full_range_fraction: 0.25,
            vulnerable_cells: 4,
        };
        let s = fig3("Mfr. T", &a);
        assert!(s.contains("50.0"));
        assert!(s.contains("no gaps: 99.00%"));
        let t3 = table3(&[("Mfr. T", &a)]);
        assert!(t3.contains("99.0%"));
    }
}
