//! The RowHammer sensitivity characterization library — the primary
//! contribution of *"A Deeper Look into RowHammer's Sensitivities"*
//! (MICRO '21).
//!
//! Driving a [`rh_softmc::TestBench`] (real chips in the paper, the
//! calibrated fault model here), this crate implements the paper's
//! complete methodology:
//!
//! * [`mapping_re`] — reverse engineering of the in-DRAM
//!   logical→physical row mapping by single-sided hammering (§4.2).
//! * [`wcdp`] — per-module worst-case data pattern identification over
//!   the seven Table-1 patterns.
//! * [`metrics`] — the two metrics of the study: BER (bit flips per
//!   victim row at 150 K hammers) and HCfirst (minimum hammer count for
//!   the first bit flip, found by the paper's binary search with 512-
//!   activation accuracy and a 512 K cap).
//! * [`experiments::temperature`] (§5) — vulnerable-temperature-range
//!   clustering (Table 3, Fig. 3), BER vs temperature (Fig. 4), HCfirst
//!   change distributions (Fig. 5).
//! * [`experiments::rowactive`] (§6) — aggressor on-time (Figs. 7/8)
//!   and off-time (Figs. 9/10) sweeps.
//! * [`experiments::spatial`] (§7) — per-row HCfirst variation
//!   (Fig. 11), per-column flip maps (Figs. 12/13), subarray regression
//!   (Fig. 14) and similarity (Fig. 15).
//! * [`observations`] — programmatic checks of the paper's Obsv. 1–16.
//! * [`report`] — plain-text rendering of every regenerated table and
//!   figure.
//! * [`campaign`] — resilient multi-module campaigns: bounded retry
//!   with deterministic backoff, quarantine of sick modules, partial
//!   results, and JSON checkpoint/resume.
//! * [`executor`] — the supervised execution layer campaigns run on: a
//!   bounded work-stealing worker pool with per-module wall-clock
//!   deadlines (watchdog) and cooperative cancellation.
//! * [`fleet`] — the coordinator-side job table and lease state
//!   machine for multi-process campaigns: leases with heartbeats,
//!   re-dispatch on expiry, at-most-once result commit, and
//!   crash-resume through versioned checkpoints.
//!
//! # Examples
//!
//! ```
//! use rh_core::{Characterizer, Scale};
//! use rh_dram::Manufacturer;
//! use rh_softmc::TestBench;
//!
//! let bench = TestBench::new(Manufacturer::A, 42);
//! let mut ch = Characterizer::new(bench, Scale::Smoke)?;
//! let hc = ch.hc_first_default(rh_dram::RowAddr(1000))?;
//! println!("HCfirst of row 1000: {hc:?}");
//! # Ok::<(), rh_core::CharError>(())
//! ```
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod campaign;
pub mod config;
pub mod error;
pub mod executor;
pub mod experiments;
pub mod fleet;
pub mod mapping_re;
pub mod metrics;
pub mod observations;
pub mod progress;
pub mod report;
pub mod wcdp;

pub use campaign::{
    module_id, verify_checkpoint, CampaignOutput, CampaignReport, CampaignRunner,
    ModuleOutcome, ModuleStatus, ModuleTask, RetryPolicy,
};
pub use config::{Scale, TestPlan};
pub use error::CharError;
pub use fleet::{
    fnv1a64, mint_replay_token, verify_fleet_checkpoint, CommitOutcome, FailOutcome,
    FleetModuleOutcome, FleetPolicy, FleetReport, JobGrant, JobTable, LeaseState, ReplayToken,
};
pub use executor::ExecutorConfig;
pub use metrics::{BerMeasurement, Characterizer};
pub use progress::{ProgressSnapshot, ProgressTracker};
