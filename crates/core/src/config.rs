//! Experiment sizing: the paper's full-scale row counts versus reduced
//! samples for CI and unit tests.

use serde::{Deserialize, Serialize};

/// How much of a bank each experiment samples.
///
/// The paper tests the first, middle, and last 8 K rows of a bank with
/// 5 repetitions (§4.2). `Paper` reproduces that; `Default` keeps the
/// same structure at a size that runs in seconds; `Smoke` is for unit
/// tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// A handful of rows, one region, one repetition.
    Smoke,
    /// Dozens of rows per region, three regions, two repetitions.
    Default,
    /// The paper's 3 × 8 K rows with 5 repetitions.
    Paper,
}

impl Scale {
    /// Victim rows sampled per bank region.
    pub fn rows_per_region(self) -> u32 {
        match self {
            Scale::Smoke => 6,
            Scale::Default => 48,
            Scale::Paper => 8192,
        }
    }

    /// Number of bank regions (first / middle / last).
    pub fn regions(self) -> u32 {
        match self {
            Scale::Smoke => 1,
            Scale::Default | Scale::Paper => 3,
        }
    }

    /// Test repetitions (the paper repeats each test five times).
    pub fn repetitions(self) -> u32 {
        match self {
            Scale::Smoke => 1,
            Scale::Default => 2,
            Scale::Paper => 5,
        }
    }

    /// Tested temperature grid (°C). The paper sweeps 50–90 °C in 5 °C
    /// steps.
    pub fn temperatures(self) -> Vec<f64> {
        match self {
            Scale::Smoke => vec![50.0, 70.0, 90.0],
            Scale::Default | Scale::Paper => (0..9).map(|i| 50.0 + 5.0 * i as f64).collect(),
        }
    }

    /// How many radius-8 neighborhood rows get the data pattern. The
    /// paper writes V±[1..8]; the fault model's blast radius is ±2, so
    /// reduced scales write ±2 without changing any observable.
    pub fn neighborhood_radius(self) -> u32 {
        match self {
            Scale::Smoke | Scale::Default => 2,
            Scale::Paper => 8,
        }
    }

    /// Rows sampled for worst-case data pattern identification.
    pub fn wcdp_rows(self) -> u32 {
        match self {
            Scale::Smoke => 4,
            Scale::Default => 12,
            Scale::Paper => 64,
        }
    }

    /// Rows sampled for row-mapping reverse engineering.
    pub fn mapping_rows(self) -> u32 {
        match self {
            Scale::Smoke => 24,
            Scale::Default => 48,
            Scale::Paper => 128,
        }
    }
}

/// The concrete set of victim rows an experiment visits on one module.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestPlan {
    /// Victim logical rows, spaced to avoid cross-test contamination.
    pub victims: Vec<u32>,
    /// Test repetitions.
    pub repetitions: u32,
}

impl TestPlan {
    /// Builds the plan for a bank of `rows_per_bank` rows at `scale`:
    /// victims from the first, middle, and last regions (§4.2), strided
    /// so consecutive victims' neighborhoods do not overlap.
    pub fn for_bank(rows_per_bank: u32, scale: Scale) -> Self {
        const STRIDE: u32 = 6;
        let n = scale.rows_per_region();
        let span = n * STRIDE;
        let margin = 16; // keep clear of bank edges
        let starts: Vec<u32> = match scale.regions() {
            1 => vec![margin],
            _ => vec![
                margin,
                (rows_per_bank / 2).saturating_sub(span / 2),
                rows_per_bank.saturating_sub(span + margin),
            ],
        };
        let mut victims = Vec::with_capacity((n * scale.regions()) as usize);
        // On small banks the regions can overlap (e.g., Paper scale on
        // a 32 K-row bank spans the whole bank three times over), so
        // deduplicate across regions, preserving order.
        let mut seen = std::collections::HashSet::new();
        for s in starts {
            for i in 0..n {
                let v = s + i * STRIDE;
                // Keep clear of both bank edges (saturated region starts
                // on tiny banks would otherwise emit edge victims).
                if v >= margin && v + margin < rows_per_bank && seen.insert(v) {
                    victims.push(v);
                }
            }
        }
        Self { victims, repetitions: scale.repetitions() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_methodology() {
        let s = Scale::Paper;
        assert_eq!(s.rows_per_region(), 8192);
        assert_eq!(s.regions(), 3);
        assert_eq!(s.repetitions(), 5);
        assert_eq!(s.temperatures().len(), 9);
        assert_eq!(s.neighborhood_radius(), 8);
    }

    #[test]
    fn default_temperatures_are_5c_grid() {
        let t = Scale::Default.temperatures();
        assert_eq!(t[0], 50.0);
        assert_eq!(*t.last().unwrap(), 90.0);
        for w in t.windows(2) {
            assert_eq!(w[1] - w[0], 5.0);
        }
    }

    #[test]
    fn plan_victims_are_strided_and_in_range() {
        let p = TestPlan::for_bank(65_536, Scale::Default);
        assert_eq!(p.victims.len(), 48 * 3);
        for w in p.victims.windows(2) {
            assert!(w[1] > w[0], "victims must be increasing within regions or jump regions");
        }
        for &v in &p.victims {
            assert!(v >= 8 && v + 8 < 65_536);
        }
    }

    #[test]
    fn plan_regions_cover_first_middle_last() {
        let p = TestPlan::for_bank(65_536, Scale::Default);
        let first = p.victims.first().copied().unwrap();
        let last = p.victims.last().copied().unwrap();
        assert!(first < 1024);
        assert!(last > 60_000);
        assert!(p.victims.iter().any(|&v| (30_000..36_000).contains(&v)));
    }

    #[test]
    fn smoke_plan_is_tiny() {
        let p = TestPlan::for_bank(32_768, Scale::Smoke);
        assert!(p.victims.len() <= 6);
        assert_eq!(p.repetitions, 1);
    }
}
