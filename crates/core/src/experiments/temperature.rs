//! §5 — Temperature analysis: per-cell vulnerable temperature ranges
//! (Table 3, Fig. 3), BER vs temperature (Fig. 4), and HCfirst change
//! with temperature (Fig. 5).

use crate::config::TestPlan;
use crate::error::CharError;
use crate::metrics::{Characterizer, BER_HAMMERS};
use rh_dram::RowAddr;
use rh_obs::names;
use rh_stats::ConfidenceInterval;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-cell vulnerable-temperature-range clustering (§5.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TempRangeAnalysis {
    /// Tested temperature grid (°C).
    pub grid: Vec<f64>,
    /// `fraction[lo][hi]`: share of vulnerable cells whose observed
    /// vulnerable range spans grid points `lo..=hi` (the Fig. 3 matrix;
    /// entries with `hi < lo` are zero).
    pub cluster_fraction: Vec<Vec<f64>>,
    /// Share of vulnerable cells flipping at *every* grid point within
    /// their observed range (Table 3, "no gaps").
    pub no_gap_fraction: f64,
    /// Share of vulnerable cells with exactly one gap.
    pub one_gap_fraction: f64,
    /// Share of vulnerable cells observed at a single grid point only
    /// (Obsv. 3's narrow ranges, ≤5 °C).
    pub narrow_fraction: f64,
    /// Share of vulnerable cells observed at every tested temperature
    /// (Obsv. 2).
    pub full_range_fraction: f64,
    /// Total distinct vulnerable cells observed.
    pub vulnerable_cells: u64,
}

/// Runs the §5.1 per-cell study on one module: at each grid
/// temperature, record which victim cells flip at 150 K hammers; then
/// cluster cells by their observed min–max temperature range.
///
/// # Errors
///
/// Infrastructure/device errors.
pub fn cell_temp_ranges(ch: &mut Characterizer) -> Result<TempRangeAnalysis, CharError> {
    let grid = ch.scale().temperatures();
    let plan = TestPlan::for_bank(ch.bench().module().geometry().rows_per_bank, ch.scale());
    let pattern = ch.wcdp();
    // (row, byte, bit) -> bitmask of grid indices where it flipped.
    let mut observed: HashMap<(u32, u32, u8), u32> = HashMap::new();
    for (gi, &t) in grid.iter().enumerate() {
        ch.set_temperature(t)?;
        let mut kernel = rh_obs::span(names::FAULTMODEL_KERNEL_SPAN);
        kernel.set("temperature", t);
        kernel.set("victims", plan.victims.len());
        for &v in &plan.victims {
            for _ in 0..plan.repetitions {
                for (byte, bit) in ch.flipped_cells(RowAddr(v), pattern, BER_HAMMERS)? {
                    *observed.entry((v, byte, bit)).or_insert(0) |= 1 << gi;
                }
            }
        }
    }
    let n = grid.len();
    let mut cluster = vec![vec![0u64; n]; n];
    let (mut no_gap, mut one_gap, mut narrow, mut full) = (0u64, 0u64, 0u64, 0u64);
    for mask in observed.values() {
        let lo = mask.trailing_zeros() as usize;
        let hi = (31 - mask.leading_zeros()) as usize;
        cluster[lo][hi] += 1;
        let span = hi - lo + 1;
        let present = mask.count_ones() as usize;
        match span - present {
            0 => no_gap += 1,
            1 => one_gap += 1,
            _ => {}
        }
        if span == 1 {
            narrow += 1;
        }
        if present == n {
            full += 1;
        }
    }
    let total = observed.len().max(1) as f64;
    Ok(TempRangeAnalysis {
        grid,
        cluster_fraction: cluster
            .into_iter()
            .map(|row| row.into_iter().map(|c| c as f64 / total).collect())
            .collect(),
        no_gap_fraction: no_gap as f64 / total,
        one_gap_fraction: one_gap as f64 / total,
        narrow_fraction: narrow as f64 / total,
        full_range_fraction: full as f64 / total,
        vulnerable_cells: observed.len() as u64,
    })
}

/// BER-vs-temperature series of one victim distance (Fig. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BerSeries {
    /// Physical distance from the double-sided victim (−2, 0, +2).
    pub distance: i64,
    /// Per-temperature percentage change of mean BER vs the 50 °C
    /// mean, with 95 % confidence interval.
    pub change_pct: Vec<ConfidenceInterval>,
}

/// Fig. 4 for one module: BER change with temperature for the victim
/// and the two single-sided victims.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BerVsTemperature {
    /// Tested temperature grid (°C).
    pub grid: Vec<f64>,
    /// Series for distances −2, 0, +2.
    pub series: Vec<BerSeries>,
}

/// Runs the Fig. 4 study on one module.
///
/// # Errors
///
/// Infrastructure/device errors.
pub fn ber_vs_temperature(ch: &mut Characterizer) -> Result<BerVsTemperature, CharError> {
    let grid = ch.scale().temperatures();
    let plan = TestPlan::for_bank(ch.bench().module().geometry().rows_per_bank, ch.scale());
    // raw[gi][distance-index][victim-index] = flips
    let mut raw: Vec<[Vec<f64>; 3]> = Vec::with_capacity(grid.len());
    for &t in &grid {
        ch.set_temperature(t)?;
        let mut at_t: [Vec<f64>; 3] = Default::default();
        for &v in &plan.victims {
            let m = ch.measure_ber_default(RowAddr(v))?;
            at_t[0].push(m.left2 as f64);
            at_t[1].push(m.victim as f64);
            at_t[2].push(m.right2 as f64);
        }
        raw.push(at_t);
    }
    let mut series = Vec::new();
    for (di, distance) in [(0usize, -2i64), (1, 0), (2, 2)] {
        // Floor the 50 °C baseline at a quarter flip per row: series
        // whose baseline sits below the measurement resolution (the
        // single-sided victims at reduced scales) stay bounded instead
        // of exploding to huge percentages.
        let base = rh_stats::mean(&raw[0][di]).max(0.25);
        let change = raw
            .iter()
            .map(|at_t| {
                let pct: Vec<f64> =
                    at_t[di].iter().map(|f| (f - base) / base * 100.0).collect();
                ConfidenceInterval::mean_ci_95(&pct)
            })
            .collect();
        series.push(BerSeries { distance, change_pct: change });
    }
    Ok(BerVsTemperature { grid, series })
}

/// HCfirst change distributions with temperature (Fig. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HcFirstVsTemperature {
    /// Per-row percentage HCfirst change from 50 °C to 55 °C, sorted
    /// descending (the Fig. 5 x-axis ordering).
    pub change_50_to_55: Vec<f64>,
    /// Per-row percentage HCfirst change from 50 °C to 90 °C, sorted
    /// descending.
    pub change_50_to_90: Vec<f64>,
    /// Percentile at which the 50→55 curve crosses zero (share of rows
    /// whose HCfirst increased).
    pub crossing_55: f64,
    /// Percentile at which the 50→90 curve crosses zero.
    pub crossing_90: f64,
    /// Ratio of cumulative |change| at ΔT = 40 °C vs ΔT = 5 °C
    /// (Obsv. 7 reports ≈4×).
    pub magnitude_ratio: f64,
}

/// Runs the Fig. 5 study on one module.
///
/// # Errors
///
/// Infrastructure/device errors.
pub fn hcfirst_vs_temperature(ch: &mut Characterizer) -> Result<HcFirstVsTemperature, CharError> {
    let plan = TestPlan::for_bank(ch.bench().module().geometry().rows_per_bank, ch.scale());
    let mut hc: [HashMap<u32, u64>; 3] = Default::default();
    for (i, t) in [50.0, 55.0, 90.0].into_iter().enumerate() {
        ch.set_temperature(t)?;
        for &v in &plan.victims {
            if let Some(h) = ch.hc_first_default(RowAddr(v))? {
                hc[i].insert(v, h);
            }
        }
    }
    let changes = |to: usize| -> Vec<f64> {
        let mut out: Vec<f64> = hc[0]
            .iter()
            .filter_map(|(v, &h50)| {
                hc[to].get(v).map(|&ht| (ht as f64 - h50 as f64) / h50 as f64 * 100.0)
            })
            .collect();
        out.sort_by(|a, b| b.total_cmp(a));
        out
    };
    let c55 = changes(1);
    let c90 = changes(2);
    let crossing = |c: &[f64]| -> f64 {
        if c.is_empty() {
            return 0.0;
        }
        c.iter().filter(|&&x| x > 0.0).count() as f64 / c.len() as f64 * 100.0
    };
    let mag = |c: &[f64]| -> f64 { c.iter().map(|x| x.abs()).sum() };
    let magnitude_ratio = if mag(&c55) > 0.0 { mag(&c90) / mag(&c55) } else { 0.0 };
    Ok(HcFirstVsTemperature {
        crossing_55: crossing(&c55),
        crossing_90: crossing(&c90),
        magnitude_ratio,
        change_50_to_55: c55,
        change_50_to_90: c90,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use rh_dram::Manufacturer;
    use rh_softmc::TestBench;

    fn smoke(mfr: Manufacturer) -> Characterizer {
        Characterizer::new(TestBench::new(mfr, 21), Scale::Smoke).unwrap()
    }

    #[test]
    fn temp_ranges_are_mostly_contiguous() {
        let mut ch = smoke(Manufacturer::B);
        let a = cell_temp_ranges(&mut ch).unwrap();
        assert!(a.vulnerable_cells > 0, "smoke run saw no vulnerable cells");
        // Obsv. 1 / Table 3: ≥90 % of cells flip at every grid point in
        // their range (the paper reports 98–99 %).
        assert!(a.no_gap_fraction >= 0.9, "no-gap fraction {}", a.no_gap_fraction);
        // Cluster fractions sum to 1.
        let sum: f64 = a.cluster_fraction.iter().flatten().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ber_series_cover_three_distances() {
        let mut ch = smoke(Manufacturer::B);
        let f = ber_vs_temperature(&mut ch).unwrap();
        let d: Vec<i64> = f.series.iter().map(|s| s.distance).collect();
        assert_eq!(d, vec![-2, 0, 2]);
        for s in &f.series {
            assert_eq!(s.change_pct.len(), f.grid.len());
        }
        // The 50 °C point of the victim series is ~0 % by construction.
        assert!(f.series[1].change_pct[0].center.abs() < 1e-6);
    }

    #[test]
    fn hcfirst_changes_have_both_signs_for_b() {
        let mut ch = smoke(Manufacturer::B);
        let f = hcfirst_vs_temperature(&mut ch).unwrap();
        if f.change_50_to_90.len() >= 4 {
            // Obsv. 5: rows move in both directions (high probability at
            // this sample size for Mfr. B).
            assert!((0.0..=100.0).contains(&f.crossing_90));
        }
    }

}
