//! §7 — Spatial variation: per-row HCfirst distributions (Fig. 11),
//! per-column bit-flip maps and design-vs-process variation
//! (Figs. 12/13), and per-subarray regression and similarity
//! (Figs. 14/15). All tests run at 75 °C, per the paper.

use crate::config::{Scale, TestPlan};
use crate::error::CharError;
use crate::metrics::{Characterizer, BER_HAMMERS};
use rh_dram::RowAddr;
use rh_obs::names;
use rh_stats::{
    coefficient_of_variation, ks_statistic, normalized_bhattacharyya, pearson, percentile,
    Histogram2d, LinearFit,
};
use serde::{Deserialize, Serialize};

/// Per-row HCfirst variation of one module (Fig. 11, Obsv. 12).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowVariation {
    /// `(physical row, HCfirst)` of every vulnerable tested row
    /// (minimum over repetitions).
    pub rows: Vec<(u32, u64)>,
    /// HCfirst values sorted descending (the Fig. 11 x-ordering).
    pub sorted_desc: Vec<f64>,
}

impl RowVariation {
    /// Minimum HCfirst across tested rows (the most vulnerable row).
    pub fn min_hc(&self) -> f64 {
        self.sorted_desc.last().copied().unwrap_or(0.0)
    }

    /// Factor by which the `p`-th percentile (of rows sorted by
    /// *increasing* vulnerability, i.e. P99 = 99 % of rows are at least
    /// this) exceeds the most vulnerable row's HCfirst. Obsv. 12:
    /// ≥1.6×/2.0×/2.2× for P99/P95/P90.
    pub fn percentile_factor(&self, p: f64) -> f64 {
        if self.sorted_desc.is_empty() || self.min_hc() == 0.0 {
            return 0.0;
        }
        // sorted_desc is descending; the row at "P99" of Fig. 11 leaves
        // 99 % of rows with larger HCfirst -> the 1st percentile of the
        // ascending distribution. Non-empty is guaranteed by the guard
        // above.
        percentile(&self.sorted_desc, 100.0 - p).unwrap_or(0.0) / self.min_hc()
    }
}

/// Measures HCfirst for every planned victim row (Fig. 11).
///
/// # Errors
///
/// Infrastructure/device errors.
pub fn row_variation(ch: &mut Characterizer) -> Result<RowVariation, CharError> {
    ch.set_temperature(75.0)?;
    let plan = TestPlan::for_bank(ch.bench().module().geometry().rows_per_bank, ch.scale());
    let mut kernel = rh_obs::span(names::FAULTMODEL_KERNEL_SPAN);
    kernel.set("victims", plan.victims.len());
    let mut rows = Vec::new();
    for &v in &plan.victims {
        if let Some(hc) = ch.hc_first_default(RowAddr(v))? {
            rows.push((v, hc));
        }
    }
    drop(kernel);
    let mut sorted: Vec<f64> = rows.iter().map(|&(_, h)| h as f64).collect();
    sorted.sort_by(|a, b| b.total_cmp(a));
    Ok(RowVariation { rows, sorted_desc: sorted })
}

/// Per-chip-column bit-flip counts of one module (Fig. 12).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnMap {
    /// `counts[chip][column]` = flips observed across all tested rows.
    pub counts: Vec<Vec<u64>>,
}

impl ColumnMap {
    /// Fraction of chip-columns with zero flips (Fig. 12: 27.8 %,
    /// 0 %, 31.1 %, 9.96 % for A–D).
    pub fn zero_fraction(&self) -> f64 {
        let total: usize = self.counts.iter().map(Vec::len).sum();
        let zero: usize =
            self.counts.iter().flatten().filter(|&&c| c == 0).count();
        zero as f64 / total.max(1) as f64
    }

    /// The largest per-column flip count.
    pub fn max_count(&self) -> u64 {
        self.counts.iter().flatten().copied().max().unwrap_or(0)
    }
}

/// Accumulates the Fig. 12 flip map over the module's test plan.
///
/// # Errors
///
/// Infrastructure/device errors.
pub fn column_map(ch: &mut Characterizer) -> Result<ColumnMap, CharError> {
    ch.set_temperature(75.0)?;
    let geometry = ch.bench().module().geometry();
    let plan = TestPlan::for_bank(geometry.rows_per_bank, ch.scale());
    let pattern = ch.wcdp();
    let chips = geometry.chips() as usize;
    let columns = geometry.columns as usize;
    let mut counts = vec![vec![0u64; columns]; chips];
    // The column map needs flip *coverage*, not unbiased per-row BER:
    // densify the row sample (3 victims per planned stride) and hammer
    // at double the standard count so reduced scales accumulate enough
    // flips per column to expose the spatial structure (the paper gets
    // this for free from its 24 K-row sweeps).
    let reps = plan.repetitions.max(2);
    for &v in &plan.victims {
        for offset in [0u32, 2, 4] {
            let victim = RowAddr(v + offset);
            if !geometry.contains_row(RowAddr(victim.0 + 16)) {
                continue;
            }
            for _ in 0..reps {
                for (byte, _bit) in
                    ch.flipped_cells(victim, pattern, 2 * BER_HAMMERS)?
                {
                    let chip = geometry.chip_of_byte(byte as usize).0 as usize;
                    let col = geometry.column_of_byte(byte as usize) as usize;
                    counts[chip][col] += 1;
                }
            }
        }
    }
    Ok(ColumnMap { counts })
}

/// The Fig. 13 clustering of one module's columns: relative
/// vulnerability vs cross-chip variation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnVariation {
    /// 11×11 population histogram: x = CV across chips (0..1,
    /// saturated), y = relative vulnerability (0..1).
    pub hist: Histogram2d,
    /// Share of vulnerable columns in the lowest-variation band
    /// (CV < 0.25 — consistent across chips: design-induced; the
    /// paper's CV = 0.0 bucket, 50.9 % for Mfr. B; at reduced sampling
    /// depth Poisson noise broadens the bucket).
    pub cv_low_fraction: f64,
    /// Share of vulnerable columns with CV ≥ 1 (process-dominated).
    pub cv_one_fraction: f64,
}

/// CV band treated as "consistent across chips" (the paper's CV = 0.0
/// bucket at full sampling depth).
pub const CV_LOW_BAND: f64 = 0.25;

/// Computes the Fig. 13 clustering from a Fig. 12 flip map (pure).
pub fn column_variation(map: &ColumnMap) -> ColumnVariation {
    let chips = map.counts.len();
    let columns = map.counts.first().map(Vec::len).unwrap_or(0);
    // Per-column mean BER across chips, and CV across chips.
    let mut rel = Vec::with_capacity(columns);
    for c in 0..columns {
        let vals: Vec<f64> = (0..chips).map(|k| map.counts[k][c] as f64).collect();
        let mean = rh_stats::mean(&vals);
        if mean > 0.0 {
            rel.push((mean, coefficient_of_variation(&vals)));
        }
    }
    let max_mean = rel.iter().map(|r| r.0).fold(0.0f64, f64::max).max(1e-9);
    let mut hist = Histogram2d::new(0.0, 1.0 + 1e-9, 11, 0.0, 1.0 + 1e-9, 11);
    let (mut cv0, mut cv1) = (0usize, 0usize);
    for &(mean, cv) in &rel {
        hist.add(cv.min(1.0), mean / max_mean);
        if cv < CV_LOW_BAND {
            cv0 += 1;
        }
        if cv >= 1.0 {
            cv1 += 1;
        }
    }
    let n = rel.len().max(1) as f64;
    ColumnVariation {
        hist,
        cv_low_fraction: cv0 as f64 / n,
        cv_one_fraction: cv1 as f64 / n,
    }
}

/// HCfirst summary of one subarray (one point of Fig. 14).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubarrayPoint {
    /// Subarray index within the bank.
    pub subarray: u32,
    /// Mean HCfirst across sampled rows.
    pub avg: f64,
    /// Minimum HCfirst across sampled rows.
    pub min: f64,
    /// The raw per-row samples (used for Fig. 15 similarity).
    pub samples: Vec<f64>,
}

/// Rows sampled per subarray at each scale.
fn subarray_sampling(scale: Scale) -> (u32, u32) {
    match scale {
        Scale::Smoke => (3, 4),
        Scale::Default => (12, 12),
        Scale::Paper => (24, 32),
    }
}

/// Measures per-subarray HCfirst statistics (Figs. 14/15): samples
/// `rows_per_subarray` rows in each of `subarrays` evenly-spaced
/// 512-row subarrays.
///
/// # Errors
///
/// Infrastructure/device errors.
pub fn subarray_hcfirst(ch: &mut Characterizer) -> Result<Vec<SubarrayPoint>, CharError> {
    ch.set_temperature(75.0)?;
    let geometry = ch.bench().module().geometry();
    let (subarrays, rows_per) = subarray_sampling(ch.scale());
    let total = geometry.subarrays();
    let mut out = Vec::with_capacity(subarrays as usize);
    for i in 0..subarrays.min(total) {
        let sa = i * (total / subarrays.min(total).max(1));
        let base = sa * geometry.subarray_rows;
        let mut samples = Vec::with_capacity(rows_per as usize);
        for j in 0..rows_per {
            let v = base + 16 + j * 6;
            if v + 16 >= (sa + 1) * geometry.subarray_rows {
                break;
            }
            if let Some(hc) = ch.hc_first_default(RowAddr(v))? {
                samples.push(hc as f64);
            }
        }
        if samples.is_empty() {
            continue;
        }
        let avg = rh_stats::mean(&samples);
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        out.push(SubarrayPoint { subarray: sa, avg, min, samples });
    }
    Ok(out)
}

/// Fits the Fig. 14 min-vs-avg line over subarray points from one or
/// more modules of a manufacturer. Returns `None` with fewer than two
/// points.
pub fn subarray_fit(points: &[SubarrayPoint]) -> Option<LinearFit> {
    let xs: Vec<f64> = points.iter().map(|p| p.avg).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.min).collect();
    LinearFit::fit(&xs, &ys)
}

/// The Fig. 15 similarity study: normalized Bhattacharyya distances of
/// subarray HCfirst distributions within and across modules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimilarityCdf {
    /// BD_norm of subarray pairs from the same module.
    pub same_module: Vec<f64>,
    /// BD_norm of subarray pairs from different modules.
    pub cross_module: Vec<f64>,
    /// Kolmogorov–Smirnov distances of the same pairs (secondary
    /// similarity measure; small = similar).
    pub same_module_ks: Vec<f64>,
    /// KS distances of the cross-module pairs.
    pub cross_module_ks: Vec<f64>,
}

impl SimilarityCdf {
    /// 5th percentile of a population (the paper annotates P5/P95), or
    /// `None` when no pairs were collected.
    pub fn p5(xs: &[f64]) -> Option<f64> {
        percentile(xs, 5.0)
    }
}

/// Computes the Fig. 15 populations from per-module subarray samples
/// (pure).
pub fn subarray_similarity(per_module: &[Vec<SubarrayPoint>]) -> SimilarityCdf {
    // Histogram support scales with sample size so sparse (reduced-
    // scale) samples still overlap: ~sqrt(n) bins, at least 3.
    let min_len = per_module
        .iter()
        .flatten()
        .map(|p| p.samples.len())
        .min()
        .unwrap_or(0)
        .max(1);
    let bins = ((min_len as f64).sqrt().round() as usize).clamp(3, 12);
    let mut same = Vec::new();
    let mut cross = Vec::new();
    let mut same_ks = Vec::new();
    let mut cross_ks = Vec::new();
    for (mi, module) in per_module.iter().enumerate() {
        for (ai, a) in module.iter().enumerate() {
            // Same module pairs.
            for b in module.iter().skip(ai + 1) {
                same.push(normalized_bhattacharyya(&a.samples, &b.samples, bins));
                same_ks.push(ks_statistic(&a.samples, &b.samples));
            }
            // Cross module pairs.
            for other in per_module.iter().skip(mi + 1) {
                for b in other {
                    cross.push(normalized_bhattacharyya(&a.samples, &b.samples, bins));
                    cross_ks.push(ks_statistic(&a.samples, &b.samples));
                }
            }
        }
    }
    SimilarityCdf {
        same_module: same,
        cross_module: cross,
        same_module_ks: same_ks,
        cross_module_ks: cross_ks,
    }
}

/// Pearson correlation of the Fig.-14 min-vs-avg relation (a secondary
/// check alongside the OLS fit's R²).
pub fn subarray_correlation(points: &[SubarrayPoint]) -> Option<f64> {
    let xs: Vec<f64> = points.iter().map(|p| p.avg).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.min).collect();
    pearson(&xs, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rh_dram::Manufacturer;
    use rh_softmc::TestBench;

    fn smoke(mfr: Manufacturer, seed: u64) -> Characterizer {
        Characterizer::new(TestBench::new(mfr, seed), Scale::Smoke).unwrap()
    }

    #[test]
    fn row_variation_finds_vulnerable_rows() {
        let mut ch = smoke(Manufacturer::B, 51);
        let rv = row_variation(&mut ch).unwrap();
        assert!(!rv.rows.is_empty());
        // Sorted descending.
        for w in rv.sorted_desc.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(rv.min_hc() > 0.0);
        // Percentile factors are ≥ 1 by construction.
        assert!(rv.percentile_factor(95.0) >= 1.0);
    }

    #[test]
    fn column_map_places_flips_in_range() {
        let mut ch = smoke(Manufacturer::B, 52);
        let cm = column_map(&mut ch).unwrap();
        assert_eq!(cm.counts.len(), 8);
        assert_eq!(cm.counts[0].len(), 1024);
        assert!(cm.max_count() > 0, "smoke run saw no flips");
        let cv = column_variation(&cm);
        assert!(cv.hist.total() > 0);
        assert!((0.0..=1.0).contains(&cv.cv_low_fraction));
    }

    #[test]
    fn subarray_points_have_min_below_avg() {
        let mut ch = smoke(Manufacturer::B, 53);
        let pts = subarray_hcfirst(&mut ch).unwrap();
        assert!(!pts.is_empty());
        for p in &pts {
            assert!(p.min <= p.avg + 1e-9, "subarray {}: min {} > avg {}", p.subarray, p.min, p.avg);
        }
    }

    #[test]
    fn similarity_same_module_close_to_one() {
        let mut a = smoke(Manufacturer::B, 54);
        let mut b = smoke(Manufacturer::B, 55);
        let pa = subarray_hcfirst(&mut a).unwrap();
        let pb = subarray_hcfirst(&mut b).unwrap();
        let sim = subarray_similarity(&[pa, pb]);
        assert!(!sim.same_module.is_empty());
        assert!(!sim.cross_module.is_empty());
        // BD_norm is noisy on smoke-scale samples (4 rows/subarray);
        // only sanity-check the range here. The Obsv. 16 relation
        // (same-module ≥ cross-module) is asserted at Default scale by
        // the cross-crate integration tests.
        for v in sim.same_module.iter().chain(&sim.cross_module) {
            assert!((0.0..=1.5).contains(v), "BD_norm out of range: {v}");
        }
    }
}
