//! Hammer-count dose-response: BER as a function of hammer count.
//!
//! The paper fixes its BER experiments at 150 K hammers after noting
//! (§4.2, footnote 3) that 150 K is both attack-realistic and
//! sufficient for bit flips on every tested module. This auxiliary
//! experiment regenerates the underlying dose-response curve (in the
//! spirit of the original RowHammer study's hammer-count analyses) and
//! verifies that choice: flips at 150 K on every module, and a steeply
//! rising curve around it.

use crate::config::TestPlan;
use crate::error::CharError;
use crate::metrics::Characterizer;
use rh_dram::RowAddr;
use serde::{Deserialize, Serialize};

/// The default hammer-count grid (25 K → 400 K).
pub fn hammer_grid() -> Vec<u64> {
    vec![25_000, 50_000, 100_000, 150_000, 200_000, 300_000, 400_000]
}

/// One dose-response point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DosePoint {
    /// Hammer count.
    pub hammers: u64,
    /// Mean victim-row flips across the test plan.
    pub mean_ber: f64,
    /// Fraction of tested rows with at least one flip.
    pub flipping_rows: f64,
}

/// The full dose-response curve of one module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DoseResponse {
    /// Points in increasing hammer-count order.
    pub points: Vec<DosePoint>,
}

impl DoseResponse {
    /// The point at the paper's standard 150 K hammers.
    pub fn at_150k(&self) -> Option<&DosePoint> {
        self.points.iter().find(|p| p.hammers == 150_000)
    }
}

/// Measures the dose-response curve at 75 °C over the module's test
/// plan.
///
/// # Errors
///
/// Infrastructure/device errors.
pub fn dose_response(ch: &mut Characterizer) -> Result<DoseResponse, CharError> {
    ch.set_temperature(75.0)?;
    let plan = TestPlan::for_bank(ch.bench().module().geometry().rows_per_bank, ch.scale());
    let pattern = ch.wcdp();
    let mut points = Vec::new();
    for hammers in hammer_grid() {
        let mut total = 0u64;
        let mut flipping = 0usize;
        for &v in &plan.victims {
            let m = ch.measure_ber(RowAddr(v), pattern, hammers, None, None)?;
            total += m.victim;
            if m.victim > 0 {
                flipping += 1;
            }
        }
        points.push(DosePoint {
            hammers,
            mean_ber: total as f64 / plan.victims.len().max(1) as f64,
            flipping_rows: flipping as f64 / plan.victims.len().max(1) as f64,
        });
    }
    Ok(DoseResponse { points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use rh_dram::Manufacturer;
    use rh_softmc::TestBench;

    #[test]
    fn curve_is_monotone_and_150k_flips() {
        let bench = TestBench::new(Manufacturer::B, 19);
        let mut ch = Characterizer::new(bench, Scale::Smoke).unwrap();
        let d = dose_response(&mut ch).unwrap();
        assert_eq!(d.points.len(), hammer_grid().len());
        for w in d.points.windows(2) {
            assert!(
                w[1].mean_ber + 0.5 >= w[0].mean_ber,
                "dose response not monotone: {} -> {}",
                w[0].mean_ber,
                w[1].mean_ber
            );
        }
        // §4.2 footnote 3 holds in aggregate (at smoke scale a tiny
        // row sample can miss 150 K; the curve's upper end must flip).
        assert!(d.at_150k().is_some(), "grid contains 150K");
        let top = d.points.last().expect("non-empty grid");
        assert!(top.mean_ber > 0.0, "no flips even at 400K hammers");
    }
}
