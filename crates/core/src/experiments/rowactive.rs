//! §6 — Aggressor row active time analysis: BER and HCfirst as the
//! aggressor on-time (tAggOn, Figs. 7/8) and bank precharged time
//! (tAggOff, Figs. 9/10) grow. All tests run at 50 °C, per the paper.

use crate::config::TestPlan;
use crate::error::CharError;
use crate::metrics::{Characterizer, BER_HAMMERS};
use rh_dram::timing::{t_agg_off_sweep, t_agg_on_sweep};
use rh_dram::{Picos, RowAddr};
use rh_stats::{coefficient_of_variation, BoxPlotStats, LetterValueStats};
use serde::{Deserialize, Serialize};

/// Measurements at one sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept timing value (ps): tAggOn for on-sweeps, tAggOff for
    /// off-sweeps.
    pub timing: Picos,
    /// Per-victim-row BER samples (flips at 150 K hammers).
    pub ber: Vec<f64>,
    /// Per-victim-row HCfirst samples (rows above the cap excluded).
    pub hc_first: Vec<f64>,
    /// Box-plot statistics of the BER distribution (Figs. 7/9).
    pub ber_box: BoxPlotStats,
    /// Letter-value statistics of the HCfirst distribution (Figs. 8/10).
    pub hc_letter: LetterValueStats,
}

impl SweepPoint {
    /// Mean BER at this point.
    pub fn mean_ber(&self) -> f64 {
        rh_stats::mean(&self.ber)
    }

    /// Mean HCfirst at this point.
    pub fn mean_hc(&self) -> f64 {
        rh_stats::mean(&self.hc_first)
    }
}

/// One module's §6 study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowActiveAnalysis {
    /// The tAggOn sweep (34.5 → 154.5 ns), baseline first.
    pub on_sweep: Vec<SweepPoint>,
    /// The tAggOff sweep (16.5 → 40.5 ns), baseline first.
    pub off_sweep: Vec<SweepPoint>,
}

impl RowActiveAnalysis {
    /// BER increase factor at the longest tAggOn vs baseline (the
    /// paper: 10.2×/3.1×/4.4×/9.6× for A–D).
    pub fn ber_gain_on(&self) -> f64 {
        let base = self.on_sweep.first().map(SweepPoint::mean_ber).unwrap_or(0.0);
        let last = self.on_sweep.last().map(SweepPoint::mean_ber).unwrap_or(0.0);
        if base > 0.0 {
            last / base
        } else {
            0.0
        }
    }

    /// HCfirst reduction at the longest tAggOn vs baseline (the paper:
    /// 40.0/28.3/32.7/37.3 %).
    pub fn hc_reduction_on(&self) -> f64 {
        let base = self.on_sweep.first().map(SweepPoint::mean_hc).unwrap_or(0.0);
        let last = self.on_sweep.last().map(SweepPoint::mean_hc).unwrap_or(0.0);
        if base > 0.0 {
            1.0 - last / base
        } else {
            0.0
        }
    }

    /// BER reduction factor at the longest tAggOff vs baseline (the
    /// paper: 6.3×/2.9×/4.9×/5.0×).
    pub fn ber_drop_off(&self) -> f64 {
        let base = self.off_sweep.first().map(SweepPoint::mean_ber).unwrap_or(0.0);
        let last = self.off_sweep.last().map(SweepPoint::mean_ber).unwrap_or(0.0);
        // When the long-tAggOff point flips nothing at all, bound the
        // drop by the measurement resolution (half a flip across the
        // sample) instead of reporting zero.
        let n = self.off_sweep.last().map(|p| p.ber.len()).unwrap_or(1).max(1);
        let floor = 0.5 / n as f64;
        if base > 0.0 {
            base / last.max(floor)
        } else {
            0.0
        }
    }

    /// HCfirst increase at the longest tAggOff vs baseline (the paper:
    /// 33.8/24.7/50.1/33.7 %).
    pub fn hc_increase_off(&self) -> f64 {
        let base = self.off_sweep.first().map(SweepPoint::mean_hc).unwrap_or(0.0);
        let last = self.off_sweep.last().map(SweepPoint::mean_hc).unwrap_or(0.0);
        if base > 0.0 {
            last / base - 1.0
        } else {
            0.0
        }
    }

    /// Change of the BER coefficient of variation across the on-sweep
    /// (Obsv. 9 reports a ≈15 % decrease).
    pub fn ber_cv_change_on(&self) -> f64 {
        let first = self.on_sweep.first().map(|p| coefficient_of_variation(&p.ber));
        let last = self.on_sweep.last().map(|p| coefficient_of_variation(&p.ber));
        match (first, last) {
            (Some(a), Some(b)) if a > 0.0 => b / a - 1.0,
            _ => 0.0,
        }
    }
}

fn sweep_point(
    ch: &mut Characterizer,
    plan: &TestPlan,
    t_on: Option<Picos>,
    t_off: Option<Picos>,
    timing: Picos,
) -> Result<SweepPoint, CharError> {
    let pattern = ch.wcdp();
    let mut ber = Vec::with_capacity(plan.victims.len());
    let mut hc = Vec::new();
    for &v in &plan.victims {
        let m = ch.measure_ber(RowAddr(v), pattern, BER_HAMMERS, t_on, t_off)?;
        ber.push(m.victim as f64);
        let mut best: Option<u64> = None;
        for _ in 0..plan.repetitions {
            if let Some(h) = ch.hc_first(RowAddr(v), pattern, t_on, t_off)? {
                best = Some(best.map_or(h, |b: u64| b.min(h)));
            }
        }
        if let Some(h) = best {
            hc.push(h as f64);
        }
    }
    Ok(SweepPoint {
        timing,
        ber_box: BoxPlotStats::of(&ber),
        hc_letter: LetterValueStats::of(&hc),
        ber,
        hc_first: hc.clone(),
    })
}

/// Runs the full §6 study on one module at 50 °C.
///
/// # Errors
///
/// Infrastructure/device errors.
pub fn row_active_analysis(ch: &mut Characterizer) -> Result<RowActiveAnalysis, CharError> {
    ch.set_temperature(50.0)?;
    let plan = TestPlan::for_bank(ch.bench().module().geometry().rows_per_bank, ch.scale());
    let mut on_sweep = Vec::new();
    for t_on in t_agg_on_sweep() {
        on_sweep.push(sweep_point(ch, &plan, Some(t_on), None, t_on)?);
    }
    let mut off_sweep = Vec::new();
    for t_off in t_agg_off_sweep() {
        off_sweep.push(sweep_point(ch, &plan, None, Some(t_off), t_off)?);
    }
    Ok(RowActiveAnalysis { on_sweep, off_sweep })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use rh_dram::Manufacturer;
    use rh_softmc::TestBench;

    #[test]
    fn sweep_shapes_match_paper_directions() {
        let bench = TestBench::new(Manufacturer::B, 33);
        let mut ch = Characterizer::new(bench, Scale::Smoke).unwrap();
        let a = row_active_analysis(&mut ch).unwrap();
        assert_eq!(a.on_sweep.len(), 5);
        assert_eq!(a.off_sweep.len(), 4);
        // Obsv. 8: BER grows and HCfirst falls with tAggOn.
        assert!(a.ber_gain_on() > 1.0, "BER gain {}", a.ber_gain_on());
        assert!(a.hc_reduction_on() > 0.0, "HC reduction {}", a.hc_reduction_on());
        // Obsv. 10: BER falls and HCfirst grows with tAggOff.
        assert!(a.ber_drop_off() > 1.0, "BER drop {}", a.ber_drop_off());
        assert!(a.hc_increase_off() > 0.0, "HC increase {}", a.hc_increase_off());
    }

    #[test]
    fn sweep_points_carry_plot_statistics() {
        let bench = TestBench::new(Manufacturer::B, 34);
        let mut ch = Characterizer::new(bench, Scale::Smoke).unwrap();
        let a = row_active_analysis(&mut ch).unwrap();
        let p = &a.on_sweep[0];
        assert_eq!(p.timing, 34_500);
        assert!(!p.ber.is_empty());
        assert!(p.ber_box.q3 >= p.ber_box.q1);
    }
}
