//! The paper's three characterization studies: temperature (§5),
//! aggressor row active time (§6), and spatial variation (§7).

pub mod dose;
pub mod rowactive;
pub mod spatial;
pub mod temperature;

use crate::error::CharError;
use crate::executor::{run_bounded, ExecutorConfig};
use crate::Characterizer;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Turns a caught panic payload into a readable detail string.
pub(crate) fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` over several characterizers on a bounded worker pool
/// (default [`ExecutorConfig`]: one worker per available core) and
/// collects every per-module outcome in input order. A 248-module
/// sweep no longer spawns 248 OS threads.
///
/// No result is ever dropped: a worker that fails (or panics — the
/// panic is contained and surfaced as
/// [`CharError::WorkerPanicked`]) yields an `Err` in its slot while
/// every other module's result is still returned. Callers that want
/// first-error semantics can use [`parallel_modules_strict`]; callers
/// that want retries and quarantine should use
/// [`CampaignRunner`](crate::campaign::CampaignRunner).
pub fn parallel_modules<T, F>(
    modules: Vec<Characterizer>,
    f: F,
) -> Vec<(Characterizer, Result<T, CharError>)>
where
    T: Send,
    F: Fn(&mut Characterizer) -> Result<T, CharError> + Sync,
{
    parallel_modules_with(&ExecutorConfig::default(), modules, f)
}

/// [`parallel_modules`] with an explicit pool configuration (the
/// deadline, if any, is ignored — unsupervised maps have no watchdog).
pub fn parallel_modules_with<T, F>(
    cfg: &ExecutorConfig,
    modules: Vec<Characterizer>,
    f: F,
) -> Vec<(Characterizer, Result<T, CharError>)>
where
    T: Send,
    F: Fn(&mut Characterizer) -> Result<T, CharError> + Sync,
{
    run_bounded(cfg, modules, |_idx, mut ch| {
        let r = catch_unwind(AssertUnwindSafe(|| f(&mut ch)))
            .unwrap_or_else(|p| Err(CharError::WorkerPanicked { detail: panic_detail(p) }));
        (ch, r)
    })
}

/// First-error variant of [`parallel_modules`]: every worker still runs
/// to completion, but the first error (in input order) is returned and
/// the successful results are dropped.
///
/// # Errors
///
/// The first error any worker produced, including contained panics.
pub fn parallel_modules_strict<T, F>(
    modules: Vec<Characterizer>,
    f: F,
) -> Result<Vec<(Characterizer, T)>, CharError>
where
    T: Send,
    F: Fn(&mut Characterizer) -> Result<T, CharError> + Sync,
{
    let mut out = Vec::new();
    for (ch, r) in parallel_modules(modules, f) {
        out.push((ch, r?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use rh_dram::Manufacturer;
    use rh_softmc::TestBench;

    #[test]
    fn parallel_runs_every_module() {
        let modules: Vec<Characterizer> = (0..3)
            .map(|i| {
                Characterizer::new(TestBench::new(Manufacturer::D, 100 + i), Scale::Smoke)
                    .unwrap()
            })
            .collect();
        let out = parallel_modules_strict(modules, |ch| Ok(ch.bench().module_seed())).unwrap();
        let seeds: Vec<u64> = out.iter().map(|(_, s)| *s).collect();
        assert_eq!(seeds, vec![100, 101, 102]);
    }

    fn smoke_modules(n: u64) -> Vec<Characterizer> {
        (0..n)
            .map(|i| {
                Characterizer::new(TestBench::new(Manufacturer::D, 100 + i), Scale::Smoke)
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn one_failure_keeps_other_results() {
        let out = parallel_modules(smoke_modules(3), |ch| {
            let seed = ch.bench().module_seed();
            if seed == 101 {
                Err(CharError::VictimOutOfRange { row: 0 })
            } else {
                Ok(seed)
            }
        });
        assert_eq!(out.len(), 3, "failed module still occupies its slot");
        assert_eq!(*out[0].1.as_ref().unwrap(), 100);
        assert!(out[1].1.is_err());
        assert_eq!(*out[2].1.as_ref().unwrap(), 102);
    }

    #[test]
    fn concurrency_is_bounded_by_the_pool() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let cfg = ExecutorConfig::with_workers(2);
        let out = parallel_modules_with(&cfg, smoke_modules(8), |ch| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(2));
            live.fetch_sub(1, Ordering::SeqCst);
            Ok(ch.bench().module_seed())
        });
        assert_eq!(out.len(), 8);
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "max_workers=2 but {} modules ran concurrently",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn worker_panic_becomes_per_module_error() {
        let out = parallel_modules(smoke_modules(2), |ch| {
            if ch.bench().module_seed() == 100 {
                panic!("injected worker panic");
            }
            Ok(())
        });
        match &out[0].1 {
            Err(CharError::WorkerPanicked { detail }) => {
                assert!(detail.contains("injected worker panic"));
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        assert!(out[1].1.is_ok(), "sibling module unaffected by the panic");
    }
}
