//! The paper's three characterization studies: temperature (§5),
//! aggressor row active time (§6), and spatial variation (§7).

pub mod dose;
pub mod rowactive;
pub mod spatial;
pub mod temperature;

use crate::error::CharError;
use crate::Characterizer;

/// Runs `f` over several characterizers in parallel OS threads and
/// collects the results in input order.
///
/// # Errors
///
/// The first error any worker produced.
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn parallel_modules<T, F>(
    modules: Vec<Characterizer>,
    f: F,
) -> Result<Vec<(Characterizer, T)>, CharError>
where
    T: Send,
    F: Fn(&mut Characterizer) -> Result<T, CharError> + Sync,
{
    let results = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = modules
            .into_iter()
            .map(|mut ch| {
                let f = &f;
                s.spawn(move |_| {
                    let r = f(&mut ch);
                    (ch, r)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect::<Vec<_>>()
    })
    .expect("thread scope panicked");
    let mut out = Vec::with_capacity(results.len());
    for (ch, r) in results {
        out.push((ch, r?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use rh_dram::Manufacturer;
    use rh_softmc::TestBench;

    #[test]
    fn parallel_runs_every_module() {
        let modules: Vec<Characterizer> = (0..3)
            .map(|i| {
                Characterizer::new(TestBench::new(Manufacturer::D, 100 + i), Scale::Smoke)
                    .unwrap()
            })
            .collect();
        let out = parallel_modules(modules, |ch| Ok(ch.bench().module_seed())).unwrap();
        let seeds: Vec<u64> = out.iter().map(|(_, s)| *s).collect();
        assert_eq!(seeds, vec![100, 101, 102]);
    }
}
