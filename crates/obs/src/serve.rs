//! A dependency-free HTTP/1.1 server for live telemetry, built on
//! `std::net::TcpListener` only.
//!
//! Endpoints:
//!
//! - `GET /metrics` — Prometheus text exposition (see [`crate::export`]),
//! - `GET /healthz` — liveness JSON; `503` when the source reports
//!   unhealthy,
//! - `GET /progress` — campaign progress JSON from the source.
//!
//! The design is deliberately minimal: a nonblocking accept loop that
//! polls a shutdown flag (and an optional caller-supplied shutdown
//! predicate, the bridge to a cancellation-token tree the caller
//! owns), a small fixed worker pool fed through a *bounded* channel,
//! and `Connection: close` on every response. When the queue is full
//! the accept thread answers `503` immediately rather than letting
//! connections pile up — a scrape endpoint must never become a memory
//! leak. Every thread is joined on [`TelemetryServer::shutdown`] (and
//! on drop), so a served campaign exits with no leaked threads.

use crate::names;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// What the server serves. Implementations render on demand, per
/// request, under the caller's locks — keep the renders cheap.
pub trait TelemetrySource: Send + Sync {
    /// Body for `GET /metrics` (Prometheus text format).
    fn metrics_text(&self) -> String;
    /// Body for `GET /progress` (a JSON object).
    fn progress_json(&self) -> String;
    /// Liveness for `GET /healthz`; `false` turns the response into a
    /// `503` so an external prober sees a wedged campaign.
    fn healthy(&self) -> bool {
        true
    }
    /// Body for `GET /healthz`.
    fn healthz_json(&self) -> String {
        format!("{{\"ok\":{}}}\n", self.healthy())
    }
}

/// Server sizing knobs. The defaults suit a scrape interval of
/// seconds: two workers, a short bounded queue, and tight socket
/// timeouts so one stuck client cannot wedge a worker for long.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling accepted connections.
    pub workers: usize,
    /// Bounded queue depth between the accept loop and the workers;
    /// overflow is answered `503` by the accept thread.
    pub queue_depth: usize,
    /// Per-connection read/write timeout.
    pub io_timeout: Duration,
    /// How often the accept loop polls for shutdown.
    pub poll_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 16,
            io_timeout: Duration::from_secs(2),
            poll_interval: Duration::from_millis(20),
        }
    }
}

/// Handle to a running telemetry server. Dropping it shuts the server
/// down and joins every thread.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for TelemetryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryServer").field("addr", &self.addr).finish_non_exhaustive()
    }
}

/// Starts a telemetry server on `addr` (e.g. `127.0.0.1:0` to let the
/// OS pick a port; read the bound address back with
/// [`TelemetryServer::local_addr`]) with default sizing and no
/// external shutdown signal.
///
/// # Errors
///
/// Errors from binding the listener.
pub fn serve(addr: &str, source: Arc<dyn TelemetrySource>) -> io::Result<TelemetryServer> {
    serve_with(addr, source, &ServeConfig::default(), None)
}

/// [`serve`] with explicit sizing and an optional shutdown predicate.
/// The accept loop polls `shutdown_when` every `poll_interval`; when
/// it returns `true` the server drains and joins exactly as if
/// [`TelemetryServer::shutdown`] had been called. This is how a
/// cancellation-token tree the caller owns (rh-obs has no dependency
/// on it) drives the server down.
///
/// # Errors
///
/// Errors from binding the listener.
pub fn serve_with(
    addr: &str,
    source: Arc<dyn TelemetrySource>,
    cfg: &ServeConfig,
    shutdown_when: Option<Box<dyn Fn() -> bool + Send>>,
) -> io::Result<TelemetryServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));

    let (tx, rx) = sync_channel::<TcpStream>(cfg.queue_depth.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let mut workers = Vec::with_capacity(cfg.workers.max(1));
    for i in 0..cfg.workers.max(1) {
        let rx = rx.clone();
        let source = source.clone();
        let io_timeout = cfg.io_timeout;
        workers.push(
            std::thread::Builder::new()
                .name(format!("rh-obs-http-{i}"))
                .spawn(move || worker_loop(&rx, source.as_ref(), io_timeout))?,
        );
    }

    let stop_flag = stop.clone();
    let poll = cfg.poll_interval.max(Duration::from_millis(1));
    let io_timeout = cfg.io_timeout;
    let accept = std::thread::Builder::new().name("rh-obs-http-accept".into()).spawn(move || {
        // `tx` moves in here; dropping it on exit closes the channel
        // and lets every worker drain and terminate.
        loop {
            if stop_flag.load(Ordering::Relaxed)
                || shutdown_when.as_ref().is_some_and(|f| f())
            {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    crate::counter(names::OBS_HTTP_REQUESTS, 1);
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(stream)) => {
                            crate::counter(names::OBS_HTTP_REJECTED, 1);
                            reject_overloaded(stream, io_timeout);
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(poll),
                Err(_) => std::thread::sleep(poll),
            }
        }
    })?;

    Ok(TelemetryServer { addr: local, stop, accept: Some(accept), workers })
}

impl TelemetryServer {
    /// The bound address (useful with a `:0` request port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains queued connections, and joins every
    /// thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    source: &dyn TelemetrySource,
    io_timeout: Duration,
) {
    loop {
        let next = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv()
        };
        match next {
            Ok(stream) => handle_connection(stream, source, io_timeout),
            Err(_) => break, // accept loop gone: no more work, ever
        }
    }
}

fn handle_connection(mut stream: TcpStream, source: &dyn TelemetrySource, io_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let (status, reason, content_type, body) = match read_request_target(&mut stream) {
        None => (400, "Bad Request", "text/plain; charset=utf-8", "bad request\n".to_string()),
        Some(target) => route(&target, source),
    };
    respond(&mut stream, status, reason, content_type, &body);
}

/// Dispatches one request path (query string already stripped).
fn route(target: &str, source: &dyn TelemetrySource) -> (u16, &'static str, &'static str, String) {
    match target {
        "/metrics" => (
            200,
            "OK",
            "text/plain; version=0.0.4; charset=utf-8",
            source.metrics_text(),
        ),
        "/progress" => (200, "OK", "application/json", source.progress_json()),
        "/healthz" => {
            let body = source.healthz_json();
            if source.healthy() {
                (200, "OK", "application/json", body)
            } else {
                (503, "Service Unavailable", "application/json", body)
            }
        }
        _ => (404, "Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
    }
}

/// Reads the request head and returns the path of a `GET` request
/// (query string stripped), or `None` for anything malformed or
/// non-`GET`. Reads at most 8 KiB — telemetry requests have no body.
fn read_request_target(stream: &mut TcpStream) -> Option<String> {
    let mut buf = [0u8; 8192];
    let mut len = 0usize;
    loop {
        if len == buf.len() {
            return None;
        }
        let n = match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => n,
            Err(_) => return None,
        };
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        // A bare request line is enough; some probes skip headers.
        if buf[..len].windows(2).any(|w| w == b"\n\n") {
            break;
        }
    }
    let head = std::str::from_utf8(&buf[..len]).ok()?;
    let request_line = head.lines().next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    if method != "GET" {
        return None;
    }
    let path = target.split('?').next().unwrap_or(target);
    Some(path.to_string())
}

fn respond(stream: &mut TcpStream, status: u16, reason: &str, content_type: &str, body: &str) {
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(header.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Answers a connection the queue had no room for.
fn reject_overloaded(mut stream: TcpStream, io_timeout: Duration) {
    let _ = stream.set_write_timeout(Some(io_timeout));
    respond(&mut stream, 503, "Service Unavailable", "text/plain; charset=utf-8", "overloaded\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead as _, BufReader};

    struct StubSource {
        healthy: AtomicBool,
    }

    impl StubSource {
        fn new() -> Self {
            Self { healthy: AtomicBool::new(true) }
        }
    }

    impl TelemetrySource for StubSource {
        fn metrics_text(&self) -> String {
            "# TYPE up gauge\nup 1\n".to_string()
        }
        fn progress_json(&self) -> String {
            "{\"total\":4,\"completed\":2}\n".to_string()
        }
        fn healthy(&self) -> bool {
            self.healthy.load(Ordering::Relaxed)
        }
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect: {e}"));
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n")
            .unwrap_or_else(|e| panic!("write: {e}"));
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap_or_else(|e| panic!("status: {e}"));
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut body = String::new();
        let mut line = String::new();
        // Skip headers, then read to EOF (Connection: close).
        loop {
            line.clear();
            let n = reader.read_line(&mut line).unwrap_or(0);
            if n == 0 || line == "\r\n" {
                break;
            }
        }
        let _ = std::io::Read::read_to_string(&mut reader, &mut body);
        (status, body)
    }

    #[test]
    fn serves_all_three_endpoints_and_404() {
        let source = Arc::new(StubSource::new());
        let mut server =
            serve("127.0.0.1:0", source.clone()).unwrap_or_else(|e| panic!("serve: {e}"));
        let addr = server.local_addr();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("up 1"));

        let (status, body) = get(addr, "/progress");
        assert_eq!(status, 200);
        assert!(body.contains("\"total\":4"));

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\":true"));

        source.healthy.store(false, Ordering::Relaxed);
        let (status, body) = get(addr, "/healthz?probe=1");
        assert_eq!(status, 503);
        assert!(body.contains("\"ok\":false"));

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        server.shutdown();
        // Idempotent, and the port is closed afterwards.
        server.shutdown();
        assert!(TcpStream::connect(addr).is_err(), "server still accepting after shutdown");
    }

    #[test]
    fn shutdown_predicate_stops_the_server() {
        let flag = Arc::new(AtomicBool::new(false));
        let watched = flag.clone();
        let mut server = serve_with(
            "127.0.0.1:0",
            Arc::new(StubSource::new()),
            &ServeConfig::default(),
            Some(Box::new(move || watched.load(Ordering::Relaxed))),
        )
        .unwrap_or_else(|e| panic!("serve: {e}"));
        let addr = server.local_addr();
        let (status, _) = get(addr, "/metrics");
        assert_eq!(status, 200);

        flag.store(true, Ordering::SeqCst);
        // The accept loop polls every 20 ms; give it a moment.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if TcpStream::connect(addr).is_err() {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "server ignored shutdown predicate");
            std::thread::sleep(Duration::from_millis(10));
        }
        server.shutdown(); // joins the already-exited threads
    }

    #[test]
    fn malformed_requests_get_400() {
        let mut server = serve("127.0.0.1:0", Arc::new(StubSource::new()))
            .unwrap_or_else(|e| panic!("serve: {e}"));
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect: {e}"));
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").unwrap_or_else(|e| panic!("{e}"));
        let mut response = String::new();
        let _ = std::io::Read::read_to_string(&mut stream, &mut response);
        assert!(response.starts_with("HTTP/1.1 400"), "got {response:?}");
        server.shutdown();
    }
}
