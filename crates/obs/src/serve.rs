//! A dependency-free HTTP/1.1 server for live telemetry and job
//! control, built on `std::net::TcpListener` only.
//!
//! Built-in endpoints:
//!
//! - `GET /metrics` — Prometheus text exposition (see [`crate::export`]),
//! - `GET /healthz` — liveness JSON; `503` when the source reports
//!   unhealthy,
//! - `GET /progress` — campaign progress JSON from the source.
//!
//! A source can add routes of its own — including `POST` routes with
//! request bodies — by overriding [`TelemetrySource::handle`]; the
//! fleet worker uses this for job submission. Requests are parsed
//! fully (method, path, headers, bounded body): a well-formed request
//! for a known route with the wrong method gets `405 Method Not
//! Allowed` with an `Allow` header, an oversized body gets `413`, and
//! `400` is reserved for genuinely malformed requests.
//!
//! The design is deliberately minimal: a nonblocking accept loop that
//! polls a shutdown flag (and an optional caller-supplied shutdown
//! predicate, the bridge to a cancellation-token tree the caller
//! owns), a small fixed worker pool fed through a *bounded* channel,
//! and `Connection: close` on every response. When the queue is full
//! the accept thread answers `503` immediately — with a `Retry-After`
//! header so a well-behaved client backs off — rather than letting
//! connections pile up; a scrape endpoint must never become a memory
//! leak. Every thread is joined on [`TelemetryServer::shutdown`] (and
//! on drop), so a served campaign exits with no leaked threads.

use crate::faultnet::{NetFault, NetFaultInjector};
use crate::names;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Request head cap: method, path, and headers must fit here.
const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Body cap; larger `Content-Length` is answered `413`.
const MAX_BODY_BYTES: usize = 64 * 1024;

/// One parsed request, handed to [`TelemetrySource::handle`].
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method, uppercase as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Path with the query string stripped.
    pub path: String,
    /// Raw query string (without the `?`), empty when absent.
    pub query: String,
    /// Request body (UTF-8; capped at [`MAX_BODY_BYTES`]).
    pub body: String,
    /// Parsed `Traceparent` header, when present and well-formed; a
    /// malformed header is treated as absent, never as an error (a
    /// corrupted trace must not fail the request it decorates).
    pub traceparent: Option<crate::trace::TraceContext>,
}

impl HttpRequest {
    /// The value of `name` in a `k=v&k=v` query string, if present.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == name).then_some(v)
        })
    }
}

/// One response, either from a built-in route or a source's custom
/// handler. The reason phrase is derived from `status`.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// Extra headers appended verbatim (`Allow`, `Retry-After`, ...).
    pub headers: Vec<(&'static str, String)>,
}

impl HttpResponse {
    /// A `200 OK` JSON response.
    #[must_use]
    pub fn ok_json(body: impl Into<String>) -> Self {
        Self::json(200, body)
    }

    /// A JSON response with an explicit status.
    #[must_use]
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self { status, content_type: "application/json", body: body.into(), headers: Vec::new() }
    }

    /// A plain-text response with an explicit status.
    #[must_use]
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// Appends one extra header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// `405 Method Not Allowed` advertising the methods a route does
    /// accept.
    #[must_use]
    pub fn method_not_allowed(allow: &'static str) -> Self {
        crate::counter(names::OBS_HTTP_METHOD_NOT_ALLOWED, 1);
        Self::text(405, "method not allowed\n").with_header("Allow", allow)
    }
}

/// The standard reason phrase for the statuses this server emits.
fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// What the server serves. Implementations render on demand, per
/// request, under the caller's locks — keep the renders cheap.
pub trait TelemetrySource: Send + Sync {
    /// Body for `GET /metrics` (Prometheus text format).
    fn metrics_text(&self) -> String;
    /// Body for `GET /progress` (a JSON object).
    fn progress_json(&self) -> String;
    /// Liveness for `GET /healthz`; `false` turns the response into a
    /// `503` so an external prober sees a wedged campaign.
    fn healthy(&self) -> bool {
        true
    }
    /// Body for `GET /healthz`.
    fn healthz_json(&self) -> String {
        format!("{{\"ok\":{}}}\n", self.healthy())
    }
    /// Custom routes, consulted before the built-ins. Return `None`
    /// to fall through to `/metrics`, `/progress`, `/healthz`, and
    /// the 404/405 machinery. This is how the fleet worker exposes
    /// `POST /job` and friends without rh-obs knowing about jobs.
    fn handle(&self, request: &HttpRequest) -> Option<HttpResponse> {
        let _ = request;
        None
    }
}

/// Server sizing knobs. The defaults suit a scrape interval of
/// seconds: two workers, a short bounded queue, and tight socket
/// timeouts so one stuck client cannot wedge a worker for long.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling accepted connections.
    pub workers: usize,
    /// Bounded queue depth between the accept loop and the workers;
    /// overflow is answered `503` by the accept thread.
    pub queue_depth: usize,
    /// Total per-direction I/O budget for one connection: the whole
    /// request must be read within this long, and the whole response
    /// written within this long. Socket timeouts are re-armed with
    /// the remainder before every syscall, so a drip-feeding writer
    /// or a slowly draining reader — each syscall making just enough
    /// progress to keep a naive per-syscall timer happy — still
    /// releases the worker slot on time.
    pub io_timeout: Duration,
    /// How often the accept loop polls for shutdown.
    pub poll_interval: Duration,
    /// `Retry-After` seconds advertised on the 503 overflow response.
    pub retry_after_secs: u64,
    /// Optional armed fault injector applied to every response this
    /// server writes: a worker process configured with a
    /// [`crate::faultnet::NetFaultPlan`] presents a flaky link to all
    /// of its clients. `None` (the default) serves faithfully.
    pub fault: Option<Arc<NetFaultInjector>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 16,
            io_timeout: Duration::from_secs(2),
            poll_interval: Duration::from_millis(20),
            retry_after_secs: 1,
            fault: None,
        }
    }
}

/// Handle to a running telemetry server. Dropping it shuts the server
/// down and joins every thread.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for TelemetryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryServer").field("addr", &self.addr).finish_non_exhaustive()
    }
}

/// Starts a telemetry server on `addr` (e.g. `127.0.0.1:0` to let the
/// OS pick a port; read the bound address back with
/// [`TelemetryServer::local_addr`]) with default sizing and no
/// external shutdown signal.
///
/// # Errors
///
/// Errors from binding the listener.
pub fn serve(addr: &str, source: Arc<dyn TelemetrySource>) -> io::Result<TelemetryServer> {
    serve_with(addr, source, &ServeConfig::default(), None)
}

/// [`serve`] with explicit sizing and an optional shutdown predicate.
/// The accept loop polls `shutdown_when` every `poll_interval`; when
/// it returns `true` the server drains and joins exactly as if
/// [`TelemetryServer::shutdown`] had been called. This is how a
/// cancellation-token tree the caller owns (rh-obs has no dependency
/// on it) drives the server down.
///
/// # Errors
///
/// Errors from binding the listener.
pub fn serve_with(
    addr: &str,
    source: Arc<dyn TelemetrySource>,
    cfg: &ServeConfig,
    shutdown_when: Option<Box<dyn Fn() -> bool + Send>>,
) -> io::Result<TelemetryServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));

    let (tx, rx) = sync_channel::<TcpStream>(cfg.queue_depth.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let mut workers = Vec::with_capacity(cfg.workers.max(1));
    for i in 0..cfg.workers.max(1) {
        let rx = rx.clone();
        let source = source.clone();
        let io_timeout = cfg.io_timeout;
        let fault = cfg.fault.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("rh-obs-http-{i}"))
                .spawn(move || worker_loop(&rx, source.as_ref(), io_timeout, fault.as_deref()))?,
        );
    }

    let stop_flag = stop.clone();
    let poll = cfg.poll_interval.max(Duration::from_millis(1));
    let io_timeout = cfg.io_timeout;
    let retry_after_secs = cfg.retry_after_secs;
    let accept = std::thread::Builder::new().name("rh-obs-http-accept".into()).spawn(move || {
        // `tx` moves in here; dropping it on exit closes the channel
        // and lets every worker drain and terminate.
        loop {
            if stop_flag.load(Ordering::Relaxed)
                || shutdown_when.as_ref().is_some_and(|f| f())
            {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    crate::counter(names::OBS_HTTP_REQUESTS, 1);
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(stream)) => {
                            crate::counter(names::OBS_HTTP_REJECTED, 1);
                            reject_overloaded(stream, io_timeout, retry_after_secs);
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(poll),
                Err(_) => std::thread::sleep(poll),
            }
        }
    })?;

    Ok(TelemetryServer { addr: local, stop, accept: Some(accept), workers })
}

impl TelemetryServer {
    /// The bound address (useful with a `:0` request port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains queued connections, and joins every
    /// thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    source: &dyn TelemetrySource,
    io_timeout: Duration,
    fault: Option<&NetFaultInjector>,
) {
    loop {
        let next = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv()
        };
        match next {
            Ok(stream) => handle_connection(stream, source, io_timeout, fault),
            Err(_) => break, // accept loop gone: no more work, ever
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    source: &dyn TelemetrySource,
    io_timeout: Duration,
    fault: Option<&NetFaultInjector>,
) {
    let read_deadline = Instant::now() + io_timeout;
    let response = match read_request(&mut stream, read_deadline) {
        Ok(request) => route(&request, source),
        Err(error_response) => error_response,
    };
    send_response(&mut stream, &response, io_timeout, fault);
}

/// Time left until `deadline`, clamped to ≥ 1 ms (a zero `Duration`
/// means *blocking* to the socket timeout setters); `None` once
/// spent.
fn remaining_budget(deadline: Instant) -> Option<Duration> {
    let now = Instant::now();
    if now >= deadline {
        return None;
    }
    Some((deadline - now).max(Duration::from_millis(1)))
}

/// Dispatches one parsed request: the source's custom routes first,
/// then the built-in GET endpoints. A known route hit with the wrong
/// method is a `405` with an `Allow` header — not a `400`, which is
/// reserved for requests we could not parse at all.
fn route(request: &HttpRequest, source: &dyn TelemetrySource) -> HttpResponse {
    if let Some(response) = source.handle(request) {
        return response;
    }
    match request.path.as_str() {
        "/metrics" | "/progress" | "/healthz" if request.method != "GET" => {
            HttpResponse::method_not_allowed("GET")
        }
        "/metrics" => HttpResponse {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: source.metrics_text(),
            headers: Vec::new(),
        },
        "/progress" => HttpResponse::ok_json(source.progress_json()),
        "/healthz" => {
            let body = source.healthz_json();
            if source.healthy() {
                HttpResponse::json(200, body)
            } else {
                HttpResponse::json(503, body)
            }
        }
        _ => HttpResponse::text(404, "not found\n"),
    }
}

/// Reads and parses one request: request line, headers, and — when
/// `Content-Length` says so — a bounded body. Returns the error
/// response to send for anything malformed (`400`) or oversized
/// (`413`).
fn read_request(
    stream: &mut TcpStream,
    deadline: Instant,
) -> Result<HttpRequest, HttpResponse> {
    let bad = || HttpResponse::text(400, "bad request\n");

    // Accumulate until the blank line ending the head. Some probes
    // send bare "\n" line endings; accept both. The read timeout is
    // re-armed with the deadline's remainder before every read, so a
    // requester dripping one byte per read still frees this worker
    // slot when the total budget is spent.
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(end) = find_head_end(&buf) {
            break end;
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(bad());
        }
        let Some(budget) = remaining_budget(deadline) else { return Err(bad()) };
        let _ = stream.set_read_timeout(Some(budget));
        match stream.read(&mut chunk) {
            Ok(0) => return Err(bad()), // EOF before the head finished
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(bad()),
        }
    };

    let head = std::str::from_utf8(&buf[..head_end.start]).map_err(|_| bad())?.to_string();
    let mut lines = head.lines();
    let request_line = lines.next().ok_or_else(bad)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or_else(bad)?.to_string();
    let target = parts.next().ok_or_else(bad)?;
    if method.is_empty() || !method.chars().all(|c| c.is_ascii_uppercase()) {
        return Err(bad());
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut content_length = 0usize;
    let mut traceparent = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| bad())?;
            } else if name.trim().eq_ignore_ascii_case("traceparent") {
                traceparent = crate::trace::parse_traceparent(value);
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpResponse::text(413, "payload too large\n"));
    }

    // Body bytes already read past the head, then the remainder.
    let mut body_bytes = buf[head_end.end..].to_vec();
    while body_bytes.len() < content_length {
        let Some(budget) = remaining_budget(deadline) else { return Err(bad()) };
        let _ = stream.set_read_timeout(Some(budget));
        match stream.read(&mut chunk) {
            Ok(0) => return Err(bad()), // EOF mid-body
            Ok(n) => body_bytes.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(bad()),
        }
    }
    body_bytes.truncate(content_length);
    let body = String::from_utf8(body_bytes).map_err(|_| bad())?;

    Ok(HttpRequest { method, path, query, body, traceparent })
}

/// Locates the head/body boundary: the byte range of the first blank
/// line (`\r\n\r\n` or `\n\n`). `start` is where the head text ends,
/// `end` is where the body begins.
fn find_head_end(buf: &[u8]) -> Option<std::ops::Range<usize>> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i..i + 4);
    let lf = buf.windows(2).position(|w| w == b"\n\n").map(|i| i..i + 2);
    match (crlf, lf) {
        (Some(a), Some(b)) => Some(if a.start <= b.start { a } else { b }),
        (a, b) => a.or(b),
    }
}

/// Renders a response into its full wire form (status line + headers
/// + body).
fn wire_bytes(response: &HttpResponse) -> Vec<u8> {
    let mut header = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        reason_for(response.status),
        response.content_type,
        response.body.len()
    );
    for (name, value) in &response.headers {
        header.push_str(name);
        header.push_str(": ");
        header.push_str(value);
        header.push_str("\r\n");
    }
    header.push_str("\r\n");
    let mut bytes = header.into_bytes();
    bytes.extend_from_slice(response.body.as_bytes());
    bytes
}

/// Chunk size for deadline-bounded writes: small enough that a
/// slowly draining reader cannot park one `write_all` call for long
/// stretches between deadline checks.
const WRITE_CHUNK_BYTES: usize = 8 * 1024;

fn send_response(
    stream: &mut TcpStream,
    response: &HttpResponse,
    budget: Duration,
    fault: Option<&NetFaultInjector>,
) {
    let decision = fault.map_or(NetFault::None, NetFaultInjector::decide);
    let bytes = match (&decision, fault) {
        (NetFault::Refuse, _) => return, // drop without a byte, as a dying peer would
        (NetFault::Truncate | NetFault::Duplicate | NetFault::CorruptStatus, Some(injector)) => {
            injector.mutate_reply(&decision, &wire_bytes(response))
        }
        _ => wire_bytes(response),
    };

    let deadline = Instant::now() + budget;
    let (chunk_len, gap) = match &decision {
        NetFault::Drip { chunk, gap } => (*chunk, *gap),
        _ => (WRITE_CHUNK_BYTES, Duration::ZERO),
    };
    if let NetFault::Delay(pause) = &decision {
        std::thread::sleep((*pause).min(budget));
    }
    // The write timeout is re-armed with the deadline's remainder
    // before every chunk, so the *whole* response must go out within
    // the budget — a reader draining one byte per timeout window
    // cannot hold this worker slot past it.
    for chunk in bytes.chunks(chunk_len.max(1)) {
        let Some(remaining) = remaining_budget(deadline) else { return };
        let _ = stream.set_write_timeout(Some(remaining));
        if stream.write_all(chunk).is_err() {
            return;
        }
        if !gap.is_zero() {
            let Some(remaining) = remaining_budget(deadline) else { return };
            std::thread::sleep(gap.min(remaining));
        }
    }
    let _ = stream.flush();
}

/// Answers a connection the queue had no room for, advertising when
/// to come back.
fn reject_overloaded(mut stream: TcpStream, io_timeout: Duration, retry_after_secs: u64) {
    let response = HttpResponse::text(503, "overloaded\n")
        .with_header("Retry-After", retry_after_secs.to_string());
    send_response(&mut stream, &response, io_timeout, None);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead as _, BufReader};

    struct StubSource {
        healthy: AtomicBool,
    }

    impl StubSource {
        fn new() -> Self {
            Self { healthy: AtomicBool::new(true) }
        }
    }

    impl TelemetrySource for StubSource {
        fn metrics_text(&self) -> String {
            "# TYPE up gauge\nup 1\n".to_string()
        }
        fn progress_json(&self) -> String {
            "{\"total\":4,\"completed\":2}\n".to_string()
        }
        fn healthy(&self) -> bool {
            self.healthy.load(Ordering::Relaxed)
        }
    }

    /// A source with one custom POST route that echoes its body.
    struct EchoSource;

    impl TelemetrySource for EchoSource {
        fn metrics_text(&self) -> String {
            String::new()
        }
        fn progress_json(&self) -> String {
            "{}".to_string()
        }
        fn handle(&self, request: &HttpRequest) -> Option<HttpResponse> {
            match (request.method.as_str(), request.path.as_str()) {
                ("POST", "/echo") => Some(HttpResponse::ok_json(request.body.clone())),
                ("GET", "/lease") => Some(HttpResponse::ok_json(format!(
                    "{{\"lease\":\"{}\"}}",
                    request.query_param("lease").unwrap_or("none")
                ))),
                ("GET", "/trace") => Some(HttpResponse::ok_json(format!(
                    "{{\"traceparent\":\"{}\"}}",
                    request
                        .traceparent
                        .map_or("none".to_string(), crate::trace::format_traceparent)
                ))),
                (_, "/echo" | "/lease") => Some(HttpResponse::method_not_allowed("GET, POST")),
                _ => None,
            }
        }
    }

    fn raw(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect: {e}"));
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        stream.write_all(request.as_bytes()).unwrap_or_else(|e| panic!("write: {e}"));
        let mut response = String::new();
        let _ = std::io::Read::read_to_string(&mut stream, &mut response);
        response
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect: {e}"));
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n")
            .unwrap_or_else(|e| panic!("write: {e}"));
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap_or_else(|e| panic!("status: {e}"));
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut body = String::new();
        let mut line = String::new();
        // Skip headers, then read to EOF (Connection: close).
        loop {
            line.clear();
            let n = reader.read_line(&mut line).unwrap_or(0);
            if n == 0 || line == "\r\n" {
                break;
            }
        }
        let _ = std::io::Read::read_to_string(&mut reader, &mut body);
        (status, body)
    }

    #[test]
    fn serves_all_three_endpoints_and_404() {
        let source = Arc::new(StubSource::new());
        let mut server =
            serve("127.0.0.1:0", source.clone()).unwrap_or_else(|e| panic!("serve: {e}"));
        let addr = server.local_addr();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("up 1"));

        let (status, body) = get(addr, "/progress");
        assert_eq!(status, 200);
        assert!(body.contains("\"total\":4"));

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\":true"));

        source.healthy.store(false, Ordering::Relaxed);
        let (status, body) = get(addr, "/healthz?probe=1");
        assert_eq!(status, 503);
        assert!(body.contains("\"ok\":false"));

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        server.shutdown();
        // Idempotent, and the port is closed afterwards.
        server.shutdown();
        assert!(TcpStream::connect(addr).is_err(), "server still accepting after shutdown");
    }

    #[test]
    fn shutdown_predicate_stops_the_server() {
        let flag = Arc::new(AtomicBool::new(false));
        let watched = flag.clone();
        let mut server = serve_with(
            "127.0.0.1:0",
            Arc::new(StubSource::new()),
            &ServeConfig::default(),
            Some(Box::new(move || watched.load(Ordering::Relaxed))),
        )
        .unwrap_or_else(|e| panic!("serve: {e}"));
        let addr = server.local_addr();
        let (status, _) = get(addr, "/metrics");
        assert_eq!(status, 200);

        flag.store(true, Ordering::SeqCst);
        // The accept loop polls every 20 ms; give it a moment.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if TcpStream::connect(addr).is_err() {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "server ignored shutdown predicate");
            std::thread::sleep(Duration::from_millis(10));
        }
        server.shutdown(); // joins the already-exited threads
    }

    #[test]
    fn non_get_on_known_route_is_405_with_allow() {
        let mut server = serve("127.0.0.1:0", Arc::new(StubSource::new()))
            .unwrap_or_else(|e| panic!("serve: {e}"));
        let addr = server.local_addr();
        let response = raw(addr, "POST /metrics HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 405"), "got {response:?}");
        assert!(response.contains("Allow: GET"), "missing Allow header: {response:?}");
        // Unknown routes stay 404 regardless of method.
        let response = raw(addr, "POST /nope HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 404"), "got {response:?}");
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_400() {
        let mut server = serve("127.0.0.1:0", Arc::new(StubSource::new()))
            .unwrap_or_else(|e| panic!("serve: {e}"));
        let addr = server.local_addr();
        // Lower-case method token: not a parseable request.
        let response = raw(addr, "get /metrics HTTP/1.1\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 400"), "got {response:?}");
        // Missing target.
        let response = raw(addr, "GET\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 400"), "got {response:?}");
        // Body shorter than Content-Length promises (EOF mid-body).
        let response = raw(addr, "POST /metrics HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort");
        assert!(response.starts_with("HTTP/1.1 400"), "got {response:?}");
        server.shutdown();
    }

    #[test]
    fn oversized_body_is_413() {
        let mut server = serve("127.0.0.1:0", Arc::new(StubSource::new()))
            .unwrap_or_else(|e| panic!("serve: {e}"));
        let addr = server.local_addr();
        let response = raw(
            addr,
            &format!("POST /metrics HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1),
        );
        assert!(response.starts_with("HTTP/1.1 413"), "got {response:?}");
        server.shutdown();
    }

    /// A source with one huge response, for the stalled-reader test.
    struct BulkSource;

    /// Large enough to overflow the loopback send+receive buffering
    /// (tcp_wmem max 4 MB + tcp_rmem max 32 MB on stock Linux), so a
    /// reader that stops draining forces the server's writes to
    /// block.
    const BULK_BYTES: usize = 48 * 1024 * 1024;

    impl TelemetrySource for BulkSource {
        fn metrics_text(&self) -> String {
            String::new()
        }
        fn progress_json(&self) -> String {
            "{}".to_string()
        }
        fn handle(&self, request: &HttpRequest) -> Option<HttpResponse> {
            (request.path == "/big").then(|| HttpResponse::text(200, "x".repeat(BULK_BYTES)))
        }
    }

    /// The satellite regression: a peer that requests a large body and
    /// then drains it one byte at a time keeps every per-write timeout
    /// happy, so only a *total* write budget frees the worker slot.
    /// With one worker, a healthy client queued behind the stalled
    /// reader measures exactly how long the slot stays blocked.
    #[test]
    fn stalled_reader_frees_the_worker_slot_within_the_write_budget() {
        let cfg = ServeConfig {
            workers: 1,
            io_timeout: Duration::from_millis(500),
            ..ServeConfig::default()
        };
        let mut server = serve_with("127.0.0.1:0", Arc::new(BulkSource), &cfg, None)
            .unwrap_or_else(|e| panic!("serve: {e}"));
        let addr = server.local_addr();

        // The stalled reader: request /big, then drain one byte per
        // 20 ms — never enough to let 48 MB through, always enough to
        // defeat a per-syscall timeout.
        let mut stalled = TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect: {e}"));
        stalled
            .write_all(b"GET /big HTTP/1.1\r\nHost: test\r\n\r\n")
            .unwrap_or_else(|e| panic!("write: {e}"));
        let drainer = std::thread::spawn(move || {
            let mut byte = [0u8; 1];
            let _ = stalled.set_read_timeout(Some(Duration::from_millis(200)));
            for _ in 0..500 {
                if matches!(std::io::Read::read(&mut stalled, &mut byte), Ok(0) | Err(_)) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            // Dropping the socket unblocks any remaining server write.
        });

        // Give the worker a moment to pick the stalled connection up,
        // then measure how long a healthy request waits behind it.
        std::thread::sleep(Duration::from_millis(100));
        let started = std::time::Instant::now();
        let (status, _) = get(addr, "/healthz");
        let waited = started.elapsed();
        assert_eq!(status, 200);
        assert!(
            waited < Duration::from_secs(4),
            "healthy request waited {waited:?} behind a stalled reader; \
             the write budget did not free the slot"
        );

        server.shutdown();
        let _ = drainer.join();
    }

    /// Server-side fault injection: a worker armed with a corrupting
    /// plan emits garbage status lines that the hardened client
    /// rejects as `InvalidData` — the coordinator sees a failed
    /// request, not a wedge or a mis-parse.
    #[test]
    fn server_side_faults_reach_the_client_as_errors() {
        use crate::faultnet::NetFaultPlan;
        // http_get consults the process-global client-side injector;
        // serialize with the tests that install one.
        let _l = crate::testlock::locked();
        let plan = NetFaultPlan { corrupt_prob: 1.0, ..NetFaultPlan::none(5) };
        let cfg = ServeConfig { fault: Some(Arc::new(plan.injector())), ..ServeConfig::default() };
        let mut server = serve_with("127.0.0.1:0", Arc::new(StubSource::new()), &cfg, None)
            .unwrap_or_else(|e| panic!("serve: {e}"));
        let addr = server.local_addr().to_string();

        let err = crate::client::http_get(&addr, "/metrics", Duration::from_secs(2));
        match err {
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidData, "got {e}"),
            Ok(r) => panic!("corrupted reply parsed as {}", r.status),
        }
        server.shutdown();
    }

    #[test]
    fn custom_routes_take_post_bodies_and_queries() {
        let mut server = serve("127.0.0.1:0", Arc::new(EchoSource))
            .unwrap_or_else(|e| panic!("serve: {e}"));
        let addr = server.local_addr();

        let body = "{\"module\":\"mfr_a#3\"}";
        let response = raw(
            addr,
            &format!("POST /echo HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len()),
        );
        assert!(response.starts_with("HTTP/1.1 200"), "got {response:?}");
        assert!(response.ends_with(body), "body not echoed: {response:?}");

        let (status, body) = get(addr, "/lease?lease=42");
        assert_eq!(status, 200);
        assert!(body.contains("\"lease\":\"42\""), "got {body:?}");

        // Wrong method on a custom route: the source's own 405.
        let response = raw(addr, "DELETE /echo HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 405"), "got {response:?}");
        assert!(response.contains("Allow: GET, POST"), "got {response:?}");

        // Built-ins still work when the custom handler falls through.
        let (status, _) = get(addr, "/progress");
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn traceparent_header_crosses_the_http_pair() {
        // The client half races armed faultnet plans from other tests.
        let _l = crate::testlock::locked();
        let mut server = serve("127.0.0.1:0", Arc::new(EchoSource))
            .unwrap_or_else(|e| panic!("serve: {e}"));
        let addr = server.local_addr();
        let wire = "00-000000000000000000000000000000ab-00000000000000cd-01";

        // Server side: a well-formed header parses, case-insensitively.
        let response =
            raw(addr, &format!("GET /trace HTTP/1.1\r\ntRaCeParEnT: {wire}\r\n\r\n"));
        assert!(response.contains(&format!("\"traceparent\":\"{wire}\"")), "got {response:?}");

        // A corrupt header is treated as absent, not as a 400.
        let response = raw(addr, "GET /trace HTTP/1.1\r\nTraceparent: 00-zz-xx-01\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 200"), "got {response:?}");
        assert!(response.contains("\"traceparent\":\"none\""), "got {response:?}");

        // Client side: a thread with a live context injects the header
        // on its own (no sink required — context is thread-local).
        let ctx = crate::trace::TraceContext { trace_id: 0xab, span_id: 0xcd };
        crate::trace::set_remote_parent(ctx);
        let reply = crate::client::http_get(
            &addr.to_string(),
            "/trace",
            Duration::from_secs(5),
        )
        .unwrap_or_else(|e| panic!("http_get: {e}"));
        crate::trace::set_remote_parent(crate::trace::TraceContext { trace_id: 0, span_id: 0 });
        assert!(reply.body.contains(&format!("\"traceparent\":\"{wire}\"")), "got {}", reply.body);
        server.shutdown();
    }
}
