//! The built-in [`Sink`]: an in-memory recorder with JSONL trace
//! export, an optional streaming trace file, and an end-of-run
//! metrics snapshot.
//!
//! JSON is rendered by hand (this crate keeps third-party code out of
//! the hot path); the output is plain RFC 8259 JSON, one object per
//! line for traces, so any consumer — including the vendored
//! `serde_json` used by the bench tests and the analyzer in
//! [`crate::analyze`] — can parse it.
//!
//! # Streaming vs. in-memory traces
//!
//! [`Recorder::new`] keeps up to [`MAX_RECORDS`] trace records in
//! memory and counts overflow as dropped. For soak-length runs use
//! [`Recorder::with_trace_file`]: every record is rendered once and
//! appended to a `BufWriter` as it arrives, so the trace on disk is
//! unbounded while memory stays bounded; the buffer is flushed on
//! every snapshot ([`Recorder::metrics_json`] and the `save_*`
//! methods) and on drop, so a trace survives a panicking campaign up
//! to the last flush. Failed writes are counted, never ignored:
//! anything the trace lost shows up as the `obs.dropped_records`
//! counter in the metrics snapshot.

use crate::{FieldValue, Sink, SpanIds};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Cap on stored trace records; beyond it events are counted but
/// dropped (in-memory mode) so a runaway campaign cannot exhaust
/// memory. In streaming mode the file keeps everything and only the
/// in-memory query copy is bounded.
const MAX_RECORDS: usize = 1 << 20;

/// One timestamped trace record (event or completed span).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Microseconds since the recorder was created.
    pub ts_us: u64,
    /// `"event"` or `"span"`.
    pub kind: &'static str,
    /// Record name (e.g. `campaign.quarantine`).
    pub name: String,
    /// Span duration; `None` for events.
    pub elapsed_us: Option<u64>,
    /// Emitting thread's [`crate::thread_ordinal`].
    pub tid: u64,
    /// Distributed trace identity (spans only, and only when the span
    /// ran inside a live trace). Rendered as zero-padded lowercase hex
    /// strings in the JSONL output.
    pub trace: Option<SpanIds>,
    /// Attached fields, in emission order.
    pub fields: Vec<(String, FieldValue)>,
}

/// Aggregate timing for one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// Completed spans.
    pub count: u64,
    /// Total wall time, microseconds.
    pub total_us: u64,
    /// Longest single span, microseconds.
    pub max_us: u64,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    spans: BTreeMap<&'static str, SpanStat>,
    records: Vec<TraceRecord>,
    writer: Option<BufWriter<File>>,
    trace_path: Option<PathBuf>,
    dropped: u64,
}

/// In-memory sink collecting counters, gauges, span aggregates, and a
/// bounded trace of events/spans. Thread-safe; share it as an `Arc`
/// between [`crate::install`] and the exporter.
pub struct Recorder {
    t0: Instant,
    inner: Mutex<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").finish_non_exhaustive()
    }
}

impl Recorder {
    /// Creates an empty recorder; timestamps are relative to now.
    pub fn new() -> Self {
        Self { t0: Instant::now(), inner: Mutex::new(Inner::default()) }
    }

    /// Creates a recorder that streams every trace record to `path`
    /// through a `BufWriter` as it arrives (see the module docs for
    /// the streaming contract).
    ///
    /// # Errors
    ///
    /// I/O errors from creating the trace file.
    pub fn with_trace_file(path: &Path) -> io::Result<Self> {
        let file = File::create(path)?;
        let rec = Self::new();
        {
            let mut inner = rec.lock();
            inner.writer = Some(BufWriter::new(file));
            inner.trace_path = Some(path.to_path_buf());
        }
        Ok(rec)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn push_record(&self, inner: &mut Inner, record: TraceRecord) {
        if let Some(writer) = inner.writer.as_mut() {
            let mut line = String::new();
            render_record(&mut line, &record);
            if writer.write_all(line.as_bytes()).is_err() {
                inner.dropped += 1;
            }
            // Keep a bounded in-memory copy for programmatic queries;
            // overflow here is not a drop — the file has the record.
            if inner.records.len() < MAX_RECORDS {
                inner.records.push(record);
            }
        } else if inner.records.len() >= MAX_RECORDS {
            inner.dropped += 1;
        } else {
            inner.records.push(record);
        }
    }

    /// Current value of counter `name` (0 if never incremented).
    /// `obs.dropped_records` reads the recorder's own drop tally.
    pub fn counter_value(&self, name: &str) -> u64 {
        let inner = self.lock();
        if name == crate::names::OBS_DROPPED_RECORDS {
            return inner.dropped;
        }
        inner.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name. Includes `obs.dropped_records`
    /// when any trace records were lost.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        let inner = self.lock();
        let mut out: BTreeMap<String, u64> =
            inner.counters.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        if inner.dropped > 0 {
            out.insert(crate::names::OBS_DROPPED_RECORDS.to_string(), inner.dropped);
        }
        out
    }

    /// Last value of gauge `name`.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> BTreeMap<String, f64> {
        self.lock().gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    /// Microseconds since the recorder was created — the same clock
    /// that stamps trace records, so rollup lines and traces align.
    pub fn elapsed_us(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }

    /// Aggregate span timings, keyed by span name.
    pub fn span_stats(&self) -> BTreeMap<String, SpanStat> {
        self.lock().spans.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    /// Number of recorded events/spans named `name`.
    pub fn events_named(&self, name: &str) -> usize {
        self.lock().records.iter().filter(|r| r.name == name).count()
    }

    /// Copy of the bounded trace.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.lock().records.clone()
    }

    /// Trace records lost to the memory cap or to write errors.
    pub fn dropped_records(&self) -> u64 {
        self.lock().dropped
    }

    /// Flushes the streaming trace writer, if any. A failed flush
    /// counts one drop (the lost tail is at least one record).
    pub fn flush(&self) {
        let mut inner = self.lock();
        flush_inner(&mut inner);
    }

    /// Renders the trace as JSONL: one JSON object per line, in
    /// arrival order. Events look like
    /// `{"ts_us":12,"kind":"event","name":"campaign.retry","tid":0,"fields":{"attempt":2}}`
    /// and spans carry an additional `"elapsed_us"`.
    pub fn to_jsonl(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for r in &inner.records {
            render_record(&mut out, r);
        }
        out
    }

    /// Renders the end-of-run metrics snapshot as a single pretty
    /// JSON object with `counters`, `gauges`, `spans`, `histograms`
    /// (from [`crate::hist::snapshot_all`]), and trace bookkeeping
    /// totals. Flushes the streaming trace writer first, so taking a
    /// snapshot also makes the on-disk trace current.
    pub fn metrics_json(&self) -> String {
        let mut inner = self.lock();
        flush_inner(&mut inner);
        let mut out = String::from("{\n  \"counters\": {");
        let dropped_entry = if inner.dropped > 0 {
            Some((crate::names::OBS_DROPPED_RECORDS, inner.dropped))
        } else {
            None
        };
        let counters = inner
            .counters
            .iter()
            .map(|(k, v)| (*k, *v))
            .chain(dropped_entry)
            .collect::<BTreeMap<&str, u64>>();
        for (i, (k, v)) in counters.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            push_json_string(&mut out, k);
            let _ = write!(out, ": {v}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in inner.gauges.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            push_json_string(&mut out, k);
            if v.is_finite() {
                let _ = write!(out, ": {v}");
            } else {
                out.push_str(": null");
            }
        }
        out.push_str("\n  },\n  \"spans\": {");
        for (i, (k, s)) in inner.spans.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            push_json_string(&mut out, k);
            let _ = write!(
                out,
                ": {{\"count\": {}, \"total_us\": {}, \"max_us\": {}}}",
                s.count, s.total_us, s.max_us
            );
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in crate::hist::snapshot_all().iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            push_json_string(&mut out, h.name);
            let _ = write!(
                out,
                ": {{\"count\": {}, \"sum\": {}, \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
                h.count,
                h.sum,
                h.mean(),
                h.p50().unwrap_or(0),
                h.p90().unwrap_or(0),
                h.p99().unwrap_or(0),
                h.max
            );
        }
        let _ = write!(
            out,
            "\n  }},\n  \"events_recorded\": {},\n  \"events_dropped\": {}\n}}\n",
            inner.records.len(),
            inner.dropped
        );
        out
    }

    /// Writes the JSONL trace to `path`. When the recorder is already
    /// streaming to a trace file this flushes the stream instead (the
    /// file is the authoritative, unbounded trace; rewriting it from
    /// the bounded in-memory copy could truncate it).
    ///
    /// # Errors
    ///
    /// I/O errors from creating or writing the file.
    pub fn save_jsonl(&self, path: &Path) -> io::Result<()> {
        {
            let mut inner = self.lock();
            if inner.writer.is_some() {
                flush_inner(&mut inner);
                return Ok(());
            }
        }
        std::fs::write(path, self.to_jsonl())
    }

    /// Extracts the bounded JSONL trace segment for one remote job:
    /// every record emitted by thread `tid` that either belongs to
    /// `trace_id` or is an untraced event (job-side events carry no
    /// span identity but still matter for replay diagnosis). Rendering
    /// stops once the segment would exceed `max_bytes`; the second
    /// return value counts the records shed to the budget — callers
    /// surface it through the [`crate::names::OBS_TRACE_SHED`]
    /// counter.
    pub fn trace_segment(&self, trace_id: u128, tid: u64, max_bytes: usize) -> (String, u64) {
        let inner = self.lock();
        let mut out = String::new();
        let mut shed = 0u64;
        for r in &inner.records {
            if r.tid != tid {
                continue;
            }
            let in_trace = r.trace.is_some_and(|ids| ids.trace_id == trace_id);
            let untraced_event = r.kind == "event" && r.trace.is_none();
            if !in_trace && !untraced_event {
                continue;
            }
            let before = out.len();
            render_record(&mut out, r);
            if out.len() > max_bytes {
                out.truncate(before);
                shed += 1;
            }
        }
        (out, shed)
    }

    /// Writes the metrics snapshot to `path` (flushing the streaming
    /// trace writer as a side effect).
    ///
    /// # Errors
    ///
    /// I/O errors from creating or writing the file.
    pub fn save_metrics(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.metrics_json())
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        let inner = match self.inner.get_mut() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(writer) = inner.writer.as_mut() {
            let _ = writer.flush();
        }
    }
}

fn flush_inner(inner: &mut Inner) {
    if let Some(writer) = inner.writer.as_mut() {
        if writer.flush().is_err() {
            inner.dropped += 1;
        }
    }
}

impl Sink for Recorder {
    fn counter(&self, name: &'static str, delta: u64) {
        let mut inner = self.lock();
        let slot = inner.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    fn gauge(&self, name: &'static str, value: f64) {
        self.lock().gauges.insert(name, value);
    }

    fn event(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        let ts_us = self.t0.elapsed().as_micros() as u64;
        let record = TraceRecord {
            ts_us,
            kind: "event",
            name: name.to_string(),
            elapsed_us: None,
            tid: crate::thread_ordinal(),
            trace: None,
            fields: fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        };
        let mut inner = self.lock();
        self.push_record(&mut inner, record);
    }

    fn span_end(&self, name: &'static str, elapsed: Duration, fields: &[(&'static str, FieldValue)]) {
        self.span_end_ids(name, elapsed, SpanIds::none(), fields);
    }

    fn span_end_ids(
        &self,
        name: &'static str,
        elapsed: Duration,
        ids: SpanIds,
        fields: &[(&'static str, FieldValue)],
    ) {
        let ts_us = self.t0.elapsed().as_micros() as u64;
        let elapsed_us = elapsed.as_micros() as u64;
        let record = TraceRecord {
            ts_us,
            kind: "span",
            name: name.to_string(),
            elapsed_us: Some(elapsed_us),
            tid: crate::thread_ordinal(),
            trace: ids.is_traced().then_some(ids),
            fields: fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        };
        let mut inner = self.lock();
        let stat = inner.spans.entry(name).or_default();
        stat.count += 1;
        stat.total_us = stat.total_us.saturating_add(elapsed_us);
        stat.max_us = stat.max_us.max(elapsed_us);
        self.push_record(&mut inner, record);
    }

    fn now_us(&self) -> Option<u64> {
        Some(self.elapsed_us())
    }
}

/// Renders one trace record as a JSON line (with trailing newline).
fn render_record(out: &mut String, r: &TraceRecord) {
    let _ = write!(out, "{{\"ts_us\":{},\"kind\":\"{}\",\"name\":", r.ts_us, r.kind);
    push_json_string(out, &r.name);
    if let Some(e) = r.elapsed_us {
        let _ = write!(out, ",\"elapsed_us\":{e}");
    }
    let _ = write!(out, ",\"tid\":{}", r.tid);
    if let Some(ids) = r.trace {
        let _ = write!(
            out,
            ",\"trace_id\":\"{:032x}\",\"span_id\":\"{:016x}\",\"parent_id\":\"{:016x}\"",
            ids.trace_id, ids.span_id, ids.parent_id
        );
    }
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in r.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, k);
        out.push(':');
        v.write_json(out);
    }
    out.push_str("}}\n");
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_lines_are_well_formed() {
        let rec = Recorder::new();
        rec.event("a.b", &[("x", FieldValue::U64(1)), ("s", FieldValue::Str("q\"uote".into()))]);
        rec.span_end("c.d", Duration::from_micros(42), &[("ok", FieldValue::Bool(true))]);
        let jsonl = rec.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"event\""));
        assert!(lines[0].contains("\"s\":\"q\\\"uote\""));
        assert!(lines[0].contains("\"tid\":"));
        assert!(lines[1].contains("\"elapsed_us\":42"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn metrics_snapshot_includes_all_kinds() {
        let rec = Recorder::new();
        rec.counter("n.c", 7);
        rec.gauge("n.g", 1.5);
        rec.span_end("n.s", Duration::from_micros(10), &[]);
        rec.span_end("n.s", Duration::from_micros(30), &[]);
        let m = rec.metrics_json();
        assert!(m.contains("\"n.c\": 7"));
        assert!(m.contains("\"n.g\": 1.5"));
        assert!(m.contains("\"count\": 2"));
        assert!(m.contains("\"max_us\": 30"));
        assert!(m.contains("\"histograms\""));
        assert!(m.contains("\"events_recorded\": 2"));
    }

    #[test]
    fn counter_saturates_instead_of_overflowing() {
        let rec = Recorder::new();
        rec.counter("c", u64::MAX);
        rec.counter("c", 5);
        assert_eq!(rec.counter_value("c"), u64::MAX);
    }

    #[test]
    fn streaming_recorder_writes_and_flushes() {
        let dir = std::env::temp_dir().join(format!("rh-obs-stream-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("trace.jsonl");
        {
            let rec = Recorder::with_trace_file(&path).unwrap_or_else(|e| panic!("{e}"));
            rec.event("s.one", &[]);
            rec.span_end("s.two", Duration::from_micros(5), &[]);
            // metrics_json must flush, making the file current even
            // before the recorder drops.
            let _ = rec.metrics_json();
            let on_disk =
                std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(on_disk.lines().count(), 2);
            assert_eq!(rec.dropped_records(), 0);
            // save_jsonl on a streaming recorder must not truncate
            // the file it is streaming to.
            rec.save_jsonl(&path).unwrap_or_else(|e| panic!("{e}"));
            let still =
                std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(still.lines().count(), 2);
        }
        let final_trace = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{e}"));
        assert!(final_trace.contains("s.one") && final_trace.contains("s.two"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropped_records_surface_as_a_counter() {
        let rec = Recorder::new();
        {
            let mut inner = rec.lock();
            inner.dropped = 3;
        }
        assert_eq!(rec.counter_value(crate::names::OBS_DROPPED_RECORDS), 3);
        assert_eq!(rec.counters().get(crate::names::OBS_DROPPED_RECORDS), Some(&3));
        assert!(rec.metrics_json().contains("\"obs.dropped_records\": 3"));
    }

    #[test]
    fn span_trace_ids_render_as_padded_hex() {
        let rec = Recorder::new();
        let ids = SpanIds { trace_id: 0xabc, span_id: 0x17, parent_id: 0 };
        rec.span_end_ids("t.s", Duration::from_micros(3), ids, &[]);
        rec.span_end("t.p", Duration::from_micros(4), &[]);
        let jsonl = rec.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines[0].contains("\"trace_id\":\"00000000000000000000000000000abc\""));
        assert!(lines[0].contains("\"span_id\":\"0000000000000017\""));
        assert!(lines[0].contains("\"parent_id\":\"0000000000000000\""));
        // An untraced span renders without any trace keys.
        assert!(!lines[1].contains("trace_id"));
    }

    #[test]
    fn trace_segment_filters_by_trace_and_thread_and_sheds_over_budget() {
        let rec = Recorder::new();
        let tid = crate::thread_ordinal();
        let mine = SpanIds { trace_id: 5, span_id: 1, parent_id: 0 };
        let other = SpanIds { trace_id: 9, span_id: 2, parent_id: 0 };
        rec.span_end_ids("seg.mine", Duration::from_micros(1), mine, &[]);
        rec.span_end_ids("seg.other", Duration::from_micros(1), other, &[]);
        rec.event("seg.event", &[]);
        rec.span_end("seg.untraced", Duration::from_micros(1), &[]);
        let (segment, shed) = rec.trace_segment(5, tid, 64 * 1024);
        assert_eq!(shed, 0);
        assert!(segment.contains("seg.mine"));
        assert!(segment.contains("seg.event"), "untraced events ride along");
        assert!(!segment.contains("seg.other"), "foreign traces excluded");
        assert!(!segment.contains("seg.untraced"), "untraced spans excluded");
        // A different thread id matches nothing.
        let (empty, _) = rec.trace_segment(5, tid + 1000, 64 * 1024);
        assert!(empty.is_empty());
        // A one-byte budget sheds everything and counts it.
        let (tiny, shed) = rec.trace_segment(5, tid, 1);
        assert!(tiny.is_empty());
        assert_eq!(shed, 2);
    }

    #[test]
    fn escaping_control_characters() {
        let mut s = String::new();
        push_json_string(&mut s, "a\u{1}b\tc");
        assert_eq!(s, "\"a\\u0001b\\tc\"");
    }
}
