//! Deterministic fault injection for the coordinator↔worker
//! *transport* — the network analogue of `rh-softmc`'s [`FaultPlan`]
//! for the host link (PR 1, DESIGN.md §6).
//!
//! A [`NetFaultPlan`] is a seeded, serde-configurable description of
//! which network faults may fire on the fleet's HTTP links and how
//! often. Arming a plan produces a [`NetFaultInjector`] whose random
//! stream is derived purely from `(seed, operation index)`, so a chaos
//! run is replayable by seed: the same sequence of client requests and
//! server responses draws the same fault schedule. The injector hooks
//! into both sides of the transport:
//!
//! * **client side** ([`crate::client`]) — connection refusal before
//!   the socket is even opened, response delay, slow-loris drip reads,
//!   mid-body truncation, duplicated replies, and corrupted status
//!   lines, all applied to the bytes the client sees;
//! * **server side** ([`crate::serve`], via `ServeConfig::fault`) —
//!   the same response mutations applied to the bytes a worker writes,
//!   so a worker process can present a flaky link to *every* client.
//!
//! Faults never corrupt the work itself: every injected fault
//! manifests to the caller as an I/O error, a timeout, or bytes that
//! [`crate::client::parse_response`] rejects — exactly the failures
//! the fleet's lease/retry/commit machinery (DESIGN.md §11) and the
//! circuit breaker (§13) are built to absorb. A fleet run under any
//! `NetFaultPlan` must therefore converge on a report bit-identical to
//! the fault-free oracle, or degrade explicitly — never silently
//! differ.
//!
//! The injector is installed process-globally (like the observability
//! sink) so the dependency-free client functions can consult it
//! without threading a handle through every call site; servers take an
//! explicit `Arc<NetFaultInjector>` instead, because one process may
//! host several servers with different plans under test.

use crate::names;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// A seeded description of transport faults to inject.
///
/// All probabilities are per-operation in `[0, 1]`; `0.0` disables the
/// corresponding fault. The default plan injects nothing. One
/// "operation" is one client request or one server response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetFaultPlan {
    /// Master seed; every decision is a pure function of
    /// `(seed, operation index)`.
    pub seed: u64,
    /// Probability that a connection attempt is refused outright
    /// (client side) or an accepted connection is dropped before any
    /// reply bytes (server side).
    pub refuse_prob: f64,
    /// Probability that the response is delayed by
    /// [`delay_ms`](Self::delay_ms) before any bytes move.
    pub delay_prob: f64,
    /// Injected response delay, milliseconds.
    pub delay_ms: u64,
    /// Probability that the response arrives as a slow-loris drip:
    /// [`drip_chunk`](Self::drip_chunk)-byte chunks separated by
    /// [`drip_gap_ms`](Self::drip_gap_ms) pauses. This is the fault a
    /// per-read timeout cannot bound — only a total request deadline
    /// can.
    pub drip_prob: f64,
    /// Bytes delivered per drip chunk (min 1).
    pub drip_chunk: usize,
    /// Pause between drip chunks, milliseconds.
    pub drip_gap_ms: u64,
    /// Probability that the response body is truncated mid-flight
    /// (the connection closes early, shorter than `Content-Length`).
    pub truncate_prob: f64,
    /// Probability that the whole reply is delivered twice back to
    /// back (a retransmitting middlebox; the bytes after the first
    /// response must be ignored, not parsed as body).
    pub duplicate_prob: f64,
    /// Probability that the status line is replaced with garbage
    /// bytes (a corrupted or non-HTTP peer).
    pub corrupt_prob: f64,
}

impl Default for NetFaultPlan {
    fn default() -> Self {
        Self::none(0)
    }
}

impl NetFaultPlan {
    /// A plan that injects nothing (useful as a baseline).
    #[must_use]
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            refuse_prob: 0.0,
            delay_prob: 0.0,
            delay_ms: 0,
            drip_prob: 0.0,
            drip_chunk: 1,
            drip_gap_ms: 0,
            truncate_prob: 0.0,
            duplicate_prob: 0.0,
            corrupt_prob: 0.0,
        }
    }

    /// An intermittently failing link: occasional refusals, delays,
    /// truncations, and duplicated replies — the everyday chaos of a
    /// multi-node deployment.
    #[must_use]
    pub fn flaky_link(seed: u64) -> Self {
        Self {
            refuse_prob: 0.05,
            delay_prob: 0.05,
            delay_ms: 50,
            truncate_prob: 0.05,
            duplicate_prob: 0.05,
            ..Self::none(seed)
        }
    }

    /// A slow-loris peer: responses drip a few bytes at a time. The
    /// per-read timeout never fires (each read makes progress), so
    /// only the total request deadline bounds these.
    #[must_use]
    pub fn slow_link(seed: u64) -> Self {
        Self {
            drip_prob: 0.25,
            drip_chunk: 3,
            drip_gap_ms: 25,
            delay_prob: 0.1,
            delay_ms: 100,
            ..Self::none(seed)
        }
    }

    /// A corrupting link: garbage status lines and truncated bodies.
    #[must_use]
    pub fn lossy_link(seed: u64) -> Self {
        Self { truncate_prob: 0.15, corrupt_prob: 0.1, ..Self::none(seed) }
    }

    /// Everything at once, at moderate rates.
    #[must_use]
    pub fn chaos(seed: u64) -> Self {
        Self {
            seed,
            refuse_prob: 0.05,
            delay_prob: 0.05,
            delay_ms: 40,
            drip_prob: 0.05,
            drip_chunk: 5,
            drip_gap_ms: 10,
            truncate_prob: 0.05,
            duplicate_prob: 0.05,
            corrupt_prob: 0.05,
        }
    }

    /// Looks up a named preset (`none`, `flaky-link`, `slow-link`,
    /// `lossy-link`, `chaos`) for CLI use.
    #[must_use]
    pub fn preset(name: &str, seed: u64) -> Option<Self> {
        match name {
            "none" => Some(Self::none(seed)),
            "flaky-link" => Some(Self::flaky_link(seed)),
            "slow-link" => Some(Self::slow_link(seed)),
            "lossy-link" => Some(Self::lossy_link(seed)),
            "chaos" => Some(Self::chaos(seed)),
            _ => None,
        }
    }

    /// The preset names [`preset`](Self::preset) accepts.
    #[must_use]
    pub fn preset_names() -> &'static [&'static str] {
        &["none", "flaky-link", "slow-link", "lossy-link", "chaos"]
    }

    /// Whether any fault can fire under this plan.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.refuse_prob <= 0.0
            && self.delay_prob <= 0.0
            && self.drip_prob <= 0.0
            && self.truncate_prob <= 0.0
            && self.duplicate_prob <= 0.0
            && self.corrupt_prob <= 0.0
    }

    /// Arms the plan: a fresh injector whose operation counter starts
    /// at zero.
    #[must_use]
    pub fn injector(&self) -> NetFaultInjector {
        NetFaultInjector { plan: self.clone(), ops: AtomicU64::new(0) }
    }
}

/// What the injector decided for one transport operation. At most one
/// fault fires per operation (plus an optional leading delay), so a
/// schedule stays interpretable: each op is either clean, delayed,
/// refused, or mutated in exactly one way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetFault {
    /// No fault; proceed normally.
    None,
    /// Refuse the connection / drop it before any reply bytes.
    Refuse,
    /// Sleep this long before moving bytes, then proceed normally.
    Delay(Duration),
    /// Deliver the reply in `chunk`-byte pieces separated by `gap`.
    Drip {
        /// Bytes per chunk (>= 1).
        chunk: usize,
        /// Pause between chunks.
        gap: Duration,
    },
    /// Deliver only the head and a prefix of the body, then close.
    Truncate,
    /// Deliver the whole reply twice back to back.
    Duplicate,
    /// Replace the status line with garbage bytes.
    CorruptStatus,
}

impl NetFault {
    /// Short kind tag for events and counters.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            NetFault::None => "none",
            NetFault::Refuse => "refuse",
            NetFault::Delay(_) => "delay",
            NetFault::Drip { .. } => "drip",
            NetFault::Truncate => "truncate",
            NetFault::Duplicate => "duplicate",
            NetFault::CorruptStatus => "corrupt_status",
        }
    }
}

/// An armed [`NetFaultPlan`]: hands out one deterministic decision per
/// transport operation. Sharable across threads; the operation counter
/// is the only mutable state, so the schedule depends only on the
/// *order* operations are drawn in, never on wall-clock time.
#[derive(Debug)]
pub struct NetFaultInjector {
    plan: NetFaultPlan,
    ops: AtomicU64,
}

/// SplitMix64 finalizer, as in `rh-softmc`'s fault module: turns any
/// seed into a well-mixed value.
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps one mixed draw onto `[0, 1)`.
fn unit(draw: u64) -> f64 {
    (draw >> 11) as f64 / (1u64 << 53) as f64
}

impl NetFaultInjector {
    /// The plan this injector was armed with.
    #[must_use]
    pub fn plan(&self) -> &NetFaultPlan {
        &self.plan
    }

    /// Operations decided so far.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Draws the decision for the next transport operation. The
    /// fault classes are checked in a fixed order against disjoint
    /// slices of one uniform draw, so at most one fires per op.
    pub fn decide(&self) -> NetFault {
        if self.plan.is_inert() {
            return NetFault::None;
        }
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let u = unit(mix(self.plan.seed ^ op.wrapping_mul(0xA24B_AED4_963E_E407)));
        let mut floor = 0.0f64;
        let mut band = |prob: f64| {
            let hit = prob > 0.0 && u >= floor && u < floor + prob;
            floor += prob.max(0.0);
            hit
        };
        let fault = if band(self.plan.refuse_prob) {
            NetFault::Refuse
        } else if band(self.plan.delay_prob) {
            NetFault::Delay(Duration::from_millis(self.plan.delay_ms))
        } else if band(self.plan.drip_prob) {
            NetFault::Drip {
                chunk: self.plan.drip_chunk.max(1),
                gap: Duration::from_millis(self.plan.drip_gap_ms),
            }
        } else if band(self.plan.truncate_prob) {
            NetFault::Truncate
        } else if band(self.plan.duplicate_prob) {
            NetFault::Duplicate
        } else if band(self.plan.corrupt_prob) {
            NetFault::CorruptStatus
        } else {
            NetFault::None
        };
        if fault != NetFault::None {
            crate::counter(names::NETFAULT_INJECTED, 1);
            crate::event!(names::NETFAULT_EVENT, kind = fault.kind(), op = op);
        }
        fault
    }

    /// Applies a decided fault to a fully formed wire reply (status
    /// line + headers + body), returning the bytes to actually
    /// deliver. `Refuse` maps to an empty delivery (the caller should
    /// drop the connection); delay/drip do not change bytes.
    #[must_use]
    pub fn mutate_reply(&self, fault: &NetFault, raw: &[u8]) -> Vec<u8> {
        match fault {
            NetFault::Refuse => Vec::new(),
            NetFault::Truncate => {
                // Keep the head and roughly half the body so the
                // receiver sees a well-formed start that dies short of
                // its Content-Length promise.
                let head_end = raw
                    .windows(4)
                    .position(|w| w == b"\r\n\r\n")
                    .map_or(raw.len() / 2, |i| i + 4);
                let body_len = raw.len() - head_end;
                raw[..head_end + body_len / 2].to_vec()
            }
            NetFault::Duplicate => {
                let mut doubled = raw.to_vec();
                doubled.extend_from_slice(raw);
                doubled
            }
            NetFault::CorruptStatus => {
                let mut corrupted = b"XTTP/9.9 ?garbage?\r\n".to_vec();
                let keep = raw
                    .iter()
                    .position(|&b| b == b'\r')
                    .map_or(0, |i| (i + 2).min(raw.len()));
                corrupted.extend_from_slice(&raw[keep..]);
                corrupted
            }
            NetFault::None | NetFault::Delay(_) | NetFault::Drip { .. } => raw.to_vec(),
        }
    }
}

/// The process-global injector the std-only client consults. Absent by
/// default; [`install`] arms it for chaos runs.
static INJECTOR: RwLock<Option<Arc<NetFaultInjector>>> = RwLock::new(None);

/// Installs `plan` as the process-global client-side fault injector,
/// returning the armed injector (e.g. to read
/// [`NetFaultInjector::ops`] afterwards). Replaces any previous plan.
pub fn install(plan: &NetFaultPlan) -> Arc<NetFaultInjector> {
    let injector = Arc::new(plan.injector());
    let mut guard = match INJECTOR.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    *guard = Some(Arc::clone(&injector));
    injector
}

/// Removes the process-global injector, returning it if one was
/// installed.
pub fn uninstall() -> Option<Arc<NetFaultInjector>> {
    let mut guard = match INJECTOR.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    guard.take()
}

/// The currently installed global injector, if any.
#[must_use]
pub fn active() -> Option<Arc<NetFaultInjector>> {
    let guard = match INJECTOR.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    guard.clone()
}

/// An RAII guard that uninstalls the global injector on drop, so a
/// chaos run (or a test) cannot leak its plan into unrelated code.
#[derive(Debug)]
pub struct InstalledPlan {
    injector: Arc<NetFaultInjector>,
}

impl InstalledPlan {
    /// Installs `plan` globally; dropping the guard uninstalls it.
    #[must_use]
    pub fn new(plan: &NetFaultPlan) -> Self {
        Self { injector: install(plan) }
    }

    /// The armed injector (for reading the op count).
    #[must_use]
    pub fn injector(&self) -> &Arc<NetFaultInjector> {
        &self.injector
    }
}

impl Drop for InstalledPlan {
    fn drop(&mut self) {
        let _ = uninstall();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(plan: &NetFaultPlan, n: usize) -> Vec<&'static str> {
        let injector = plan.injector();
        (0..n).map(|_| injector.decide().kind()).collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = NetFaultPlan::chaos(42);
        assert_eq!(schedule(&plan, 500), schedule(&plan, 500));
        let other = NetFaultPlan::chaos(43);
        assert_ne!(schedule(&plan, 500), schedule(&other, 500), "seed must matter");
    }

    #[test]
    fn inert_plan_never_fires_and_draws_no_ops() {
        let plan = NetFaultPlan::none(7);
        assert!(plan.is_inert());
        let injector = plan.injector();
        for _ in 0..100 {
            assert_eq!(injector.decide(), NetFault::None);
        }
        assert_eq!(injector.ops(), 0, "inert plans must not consume the stream");
    }

    #[test]
    fn chaos_fires_every_class_eventually() {
        let plan = NetFaultPlan::chaos(11);
        let kinds: std::collections::BTreeSet<_> = schedule(&plan, 2_000).into_iter().collect();
        for kind in ["refuse", "delay", "drip", "truncate", "duplicate", "corrupt_status", "none"]
        {
            assert!(kinds.contains(kind), "chaos never drew '{kind}': {kinds:?}");
        }
    }

    #[test]
    fn presets_resolve_and_unknown_is_none() {
        for name in NetFaultPlan::preset_names() {
            let plan = NetFaultPlan::preset(name, 3)
                .unwrap_or_else(|| panic!("preset '{name}' missing"));
            assert_eq!(plan.seed, 3);
        }
        assert!(NetFaultPlan::preset("flaky-host", 0).is_none(), "that's the PR-1 namespace");
    }

    #[test]
    fn certain_refusal_always_refuses() {
        let plan = NetFaultPlan { refuse_prob: 1.0, ..NetFaultPlan::none(0) };
        let injector = plan.injector();
        for _ in 0..50 {
            assert_eq!(injector.decide(), NetFault::Refuse);
        }
    }

    #[test]
    fn mutations_shape_the_reply_as_documented() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 8\r\n\r\nabcdefgh";
        let injector = NetFaultPlan::none(0).injector();

        let truncated = injector.mutate_reply(&NetFault::Truncate, raw);
        assert!(truncated.len() < raw.len());
        assert!(truncated.windows(4).any(|w| w == b"\r\n\r\n"), "head must survive");

        let doubled = injector.mutate_reply(&NetFault::Duplicate, raw);
        assert_eq!(doubled.len(), raw.len() * 2);
        assert_eq!(&doubled[..raw.len()], raw);

        let corrupted = injector.mutate_reply(&NetFault::CorruptStatus, raw);
        assert!(corrupted.starts_with(b"XTTP/9.9"));

        assert!(injector.mutate_reply(&NetFault::Refuse, raw).is_empty());
        assert_eq!(injector.mutate_reply(&NetFault::None, raw), raw.to_vec());
    }

    #[test]
    fn install_guard_uninstalls_on_drop() {
        let _l = crate::testlock::locked();
        {
            let guard = InstalledPlan::new(&NetFaultPlan::flaky_link(1));
            assert!(active().is_some());
            assert_eq!(guard.injector().plan().seed, 1);
        }
        assert!(active().is_none(), "guard must uninstall on drop");
    }
}
