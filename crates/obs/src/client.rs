//! A dependency-free HTTP/1.1 client for the fleet coordinator,
//! matching the server in [`crate::serve`]: one request per
//! connection, `Connection: close`, bounded by socket timeouts.
//!
//! The client surfaces the `Retry-After` header on error responses so
//! a caller that hit a `503` from an overloaded worker can honor the
//! worker's own advice about when to come back instead of hammering
//! it.

use std::io::{self, Read as _, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Response body cap; a telemetry or job-result body beyond this is
/// treated as an I/O error rather than buffered without bound.
const MAX_RESPONSE_BYTES: usize = 4 * 1024 * 1024;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// Parsed `Retry-After` header (seconds form), when present.
    pub retry_after: Option<Duration>,
}

impl ClientResponse {
    /// Whether the status is in the 2xx range.
    #[must_use]
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Issues `GET path` against `addr` (a `host:port` string).
///
/// # Errors
///
/// Connection, timeout, and malformed-response errors.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> io::Result<ClientResponse> {
    request(addr, "GET", path, None, timeout)
}

/// Issues `POST path` with a body against `addr`.
///
/// # Errors
///
/// Connection, timeout, and malformed-response errors.
pub fn http_post(
    addr: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> io::Result<ClientResponse> {
    request(addr, "POST", path, Some(body), timeout)
}

fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<ClientResponse> {
    let socket_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, format!("no addr for {addr}")))?;
    let mut stream = TcpStream::connect_timeout(&socket_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;

    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&chunk[..n]);
                if raw.len() > MAX_RESPONSE_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "response exceeds size cap",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> io::Result<ClientResponse> {
    let malformed = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| malformed("no header terminator"))?;
    let head =
        std::str::from_utf8(&raw[..head_end]).map_err(|_| malformed("non-utf8 header"))?;
    let mut lines = head.lines();
    let status_line = lines.next().ok_or_else(|| malformed("empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| malformed("bad status line"))?;

    let mut retry_after = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("retry-after") {
                retry_after = value.trim().parse::<u64>().ok().map(Duration::from_secs);
            }
        }
    }

    let body = String::from_utf8(raw[head_end + 4..].to_vec())
        .map_err(|_| malformed("non-utf8 body"))?;
    Ok(ClientResponse { status, body, retry_after })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{serve, HttpRequest, HttpResponse, TelemetrySource};
    use std::sync::Arc;

    struct StubSource;

    impl TelemetrySource for StubSource {
        fn metrics_text(&self) -> String {
            "up 1\n".to_string()
        }
        fn progress_json(&self) -> String {
            "{\"total\":1}".to_string()
        }
        fn handle(&self, request: &HttpRequest) -> Option<HttpResponse> {
            match (request.method.as_str(), request.path.as_str()) {
                ("POST", "/job") => Some(HttpResponse::json(
                    202,
                    format!("{{\"echo\":{}}}", request.body.len()),
                )),
                ("GET", "/busy") => {
                    Some(HttpResponse::text(503, "overloaded\n").with_header("Retry-After", "7"))
                }
                _ => None,
            }
        }
    }

    #[test]
    fn get_and_post_round_trip() {
        let mut server =
            serve("127.0.0.1:0", Arc::new(StubSource)).unwrap_or_else(|e| panic!("serve: {e}"));
        let addr = server.local_addr().to_string();
        let timeout = Duration::from_secs(5);

        let response = http_get(&addr, "/metrics", timeout).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(response.status, 200);
        assert!(response.is_success());
        assert!(response.body.contains("up 1"));
        assert!(response.retry_after.is_none());

        let response =
            http_post(&addr, "/job", "{\"m\":1}", timeout).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(response.status, 202);
        assert_eq!(response.body, "{\"echo\":7}");

        server.shutdown();
    }

    #[test]
    fn retry_after_is_parsed() {
        let mut server =
            serve("127.0.0.1:0", Arc::new(StubSource)).unwrap_or_else(|e| panic!("serve: {e}"));
        let addr = server.local_addr().to_string();
        let response =
            http_get(&addr, "/busy", Duration::from_secs(5)).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(response.status, 503);
        assert!(!response.is_success());
        assert_eq!(response.retry_after, Some(Duration::from_secs(7)));
        server.shutdown();
    }

    #[test]
    fn connection_refused_is_an_error() {
        // Bind-then-drop guarantees an unused port.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0")
                .unwrap_or_else(|e| panic!("bind: {e}"));
            l.local_addr().map(|a| a.port()).unwrap_or_else(|e| panic!("addr: {e}"))
        };
        let err = http_get(&format!("127.0.0.1:{port}"), "/metrics", Duration::from_millis(500));
        assert!(err.is_err(), "connect to a closed port should fail");
    }
}
