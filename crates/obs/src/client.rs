//! A dependency-free HTTP/1.1 client for the fleet coordinator,
//! matching the server in [`crate::serve`]: one request per
//! connection, `Connection: close`, bounded by a **total per-request
//! deadline**.
//!
//! The client surfaces the `Retry-After` header on error responses so
//! a caller that hit a `503` from an overloaded worker can honor the
//! worker's own advice about when to come back instead of hammering
//! it.
//!
//! # Deadline semantics
//!
//! The `timeout` passed to [`http_get`]/[`http_post`] bounds the
//! *whole* request — connect, write, and every read — not each
//! individual socket operation. Socket timeouts are re-armed before
//! each syscall with the time remaining, so a slow-loris peer that
//! drips one byte per read (keeping every per-read timer happy
//! forever) still hits [`std::io::ErrorKind::TimedOut`] when the
//! budget is spent. This is the difference between a coordinator
//! dispatch loop that stalls behind one sick worker and one that
//! fails fast and lets the circuit breaker route around it.
//!
//! # Fault injection
//!
//! When a [`crate::faultnet`] plan is installed process-globally, each
//! request draws one deterministic fault decision: refusal, delay,
//! drip-read pacing, or a reply mutation (truncation, duplication,
//! status-line corruption) applied to the received bytes before
//! parsing. All of them surface as ordinary `io::Error`s or parse
//! failures — the retry/lease machinery upstream cannot tell injected
//! chaos from the real thing, which is the point.

use crate::faultnet::{self, NetFault};
use std::io::{self, Read as _, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Response body cap; a telemetry or job-result body beyond this is
/// treated as an I/O error rather than buffered without bound.
const MAX_RESPONSE_BYTES: usize = 4 * 1024 * 1024;

/// Response head cap; headers that keep going past this are
/// adversarial, not chatty.
const MAX_HEAD_BYTES: usize = 64 * 1024;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// Parsed `Retry-After` header (seconds form), when present.
    pub retry_after: Option<Duration>,
    /// All response headers, names lowercased, in wire order.
    pub headers: Vec<(String, String)>,
}

impl ClientResponse {
    /// Whether the status is in the 2xx range.
    #[must_use]
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// First header with this name (lowercase), if any.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// A total wall-clock budget for one request, re-armed onto the
/// socket before every syscall.
#[derive(Debug, Clone, Copy)]
struct Deadline {
    end: Instant,
}

impl Deadline {
    fn new(total: Duration) -> Self {
        Self { end: Instant::now() + total }
    }

    /// Time left, or `TimedOut` once the budget is spent. Clamped to
    /// ≥ 1 ms because a zero `Duration` means *blocking* to
    /// `set_read_timeout`, the exact failure mode this type exists to
    /// prevent.
    fn remaining(&self) -> io::Result<Duration> {
        let now = Instant::now();
        if now >= self.end {
            return Err(io::Error::new(io::ErrorKind::TimedOut, "total request deadline exceeded"));
        }
        Ok((self.end - now).max(Duration::from_millis(1)))
    }

    fn arm_read(&self, stream: &TcpStream) -> io::Result<()> {
        stream.set_read_timeout(Some(self.remaining()?))
    }

    fn arm_write(&self, stream: &TcpStream) -> io::Result<()> {
        stream.set_write_timeout(Some(self.remaining()?))
    }
}

/// Issues `GET path` against `addr` (a `host:port` string).
///
/// # Errors
///
/// Connection, deadline, and malformed-response errors.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> io::Result<ClientResponse> {
    request(addr, "GET", path, None, timeout)
}

/// Issues `POST path` with a body against `addr`.
///
/// # Errors
///
/// Connection, deadline, and malformed-response errors.
pub fn http_post(
    addr: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> io::Result<ClientResponse> {
    request(addr, "POST", path, Some(body), timeout)
}

fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<ClientResponse> {
    let deadline = Deadline::new(timeout);
    let injector = faultnet::active();
    let fault = injector.as_ref().map_or(NetFault::None, |i| i.decide());

    match &fault {
        NetFault::Refuse => {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "injected connection refusal",
            ));
        }
        NetFault::Delay(pause) => sleep_within(&deadline, *pause)?,
        _ => {}
    }

    let socket_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, format!("no addr for {addr}")))?;
    let mut stream = TcpStream::connect_timeout(&socket_addr, deadline.remaining()?)?;

    let body = body.unwrap_or("");
    // Propagate the caller's trace context so the server can parent
    // its spans under ours (see `crate::trace`). One extra header
    // line, only when a trace is actually live.
    let traceparent = crate::trace::current_context().map_or(String::new(), |ctx| {
        format!("Traceparent: {}\r\n", crate::trace::format_traceparent(ctx))
    });
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n{traceparent}Connection: close\r\n\r\n",
        body.len()
    );
    deadline.arm_write(&stream)?;
    stream.write_all(head.as_bytes()).map_err(normalize_timeout)?;
    deadline.arm_write(&stream)?;
    stream.write_all(body.as_bytes()).map_err(normalize_timeout)?;
    stream.flush().map_err(normalize_timeout)?;

    let mut raw = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let drip = match &fault {
        NetFault::Drip { chunk, gap } => Some((*chunk, *gap)),
        _ => None,
    };
    loop {
        deadline.arm_read(&stream)?;
        // Under an injected drip, pace the reads the way a congested
        // link would pace the packets: tiny reads separated by gaps.
        // Each read still makes progress, so only the total deadline
        // can end a drip that outlasts its budget.
        let window = match drip {
            Some((chunk_len, _)) => chunk_len.min(chunk.len()),
            None => chunk.len(),
        };
        match stream.read(&mut chunk[..window]) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&chunk[..n]);
                if raw.len() > MAX_RESPONSE_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "response exceeds size cap",
                    ));
                }
                if let Some((_, gap)) = drip {
                    if !gap.is_zero() {
                        sleep_within(&deadline, gap)?;
                    }
                }
            }
            Err(e) => return Err(normalize_timeout(e)),
        }
    }

    let raw = match (&fault, injector.as_ref()) {
        (NetFault::Truncate | NetFault::Duplicate | NetFault::CorruptStatus, Some(i)) => {
            i.mutate_reply(&fault, &raw)
        }
        _ => raw,
    };
    parse_response(&raw)
}

/// A socket timeout surfaces as `WouldBlock` (EAGAIN) on Unix and
/// `TimedOut` on Windows; the socket timers are armed with the
/// deadline's remainder, so both mean the total budget ran out.
fn normalize_timeout(e: io::Error) -> io::Error {
    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) {
        io::Error::new(io::ErrorKind::TimedOut, "total request deadline exceeded")
    } else {
        e
    }
}

/// Sleeps for `pause`, but never past the deadline; errs `TimedOut`
/// if the deadline falls inside (or before) the pause.
fn sleep_within(deadline: &Deadline, pause: Duration) -> io::Result<()> {
    let remaining = deadline.remaining()?;
    if pause >= remaining {
        std::thread::sleep(remaining);
        return Err(io::Error::new(io::ErrorKind::TimedOut, "total request deadline exceeded"));
    }
    std::thread::sleep(pause);
    Ok(())
}

/// Parses one `Connection: close` HTTP/1.1 response from raw received
/// bytes.
///
/// Hardened against adversarial peers: must return `Err` — never
/// panic, never loop — on truncated status lines, non-HTTP garbage,
/// missing/duplicate/non-numeric `Content-Length`, oversized heads,
/// and bodies shorter than their declared length. Bytes *beyond* a
/// valid `Content-Length` (e.g. a duplicated reply from a
/// retransmitting middlebox) are ignored rather than glued onto the
/// body.
///
/// # Errors
///
/// `InvalidData` describing the first malformation found.
pub fn parse_response(raw: &[u8]) -> io::Result<ClientResponse> {
    let malformed = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let scan_end = raw.len().min(MAX_HEAD_BYTES);
    let head_end = raw[..scan_end].windows(4).position(|w| w == b"\r\n\r\n").ok_or_else(|| {
        malformed(if raw.len() > scan_end { "oversized header" } else { "no header terminator" })
    })?;
    let head =
        std::str::from_utf8(&raw[..head_end]).map_err(|_| malformed("non-utf8 header"))?;
    let mut lines = head.lines();
    let status_line = lines.next().ok_or_else(|| malformed("empty response"))?;
    let mut words = status_line.split_whitespace();
    let version = words.next().ok_or_else(|| malformed("bad status line"))?;
    if !version.starts_with("HTTP/") {
        return Err(malformed("bad status line"));
    }
    let status: u16 = words
        .next()
        .filter(|s| s.len() == 3)
        .and_then(|s| s.parse().ok())
        .filter(|s| (100..=599).contains(s))
        .ok_or_else(|| malformed("bad status line"))?;

    let mut retry_after = None;
    let mut content_length: Option<usize> = None;
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line.split_once(':').ok_or_else(|| malformed("bad header line"))?;
        let name = name.trim();
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        if name.eq_ignore_ascii_case("retry-after") {
            retry_after = value.trim().parse::<u64>().ok().map(Duration::from_secs);
        } else if name.eq_ignore_ascii_case("content-length") {
            let len: usize =
                value.trim().parse().map_err(|_| malformed("bad content-length"))?;
            if content_length.is_some_and(|prev| prev != len) {
                return Err(malformed("conflicting content-length"));
            }
            if len > MAX_RESPONSE_BYTES {
                return Err(malformed("content-length exceeds size cap"));
            }
            content_length = Some(len);
        }
    }

    let after_head = &raw[head_end + 4..];
    let body_bytes = match content_length {
        Some(len) if after_head.len() < len => return Err(malformed("truncated body")),
        Some(len) => &after_head[..len],
        // No Content-Length: a close-delimited body, everything to EOF.
        None => after_head,
    };
    let body =
        String::from_utf8(body_bytes.to_vec()).map_err(|_| malformed("non-utf8 body"))?;
    Ok(ClientResponse { status, body, retry_after, headers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultnet::{InstalledPlan, NetFaultPlan};
    use crate::serve::{serve, HttpRequest, HttpResponse, TelemetrySource};
    use std::net::TcpListener;
    use std::sync::Arc;

    struct StubSource;

    impl TelemetrySource for StubSource {
        fn metrics_text(&self) -> String {
            "up 1\n".to_string()
        }
        fn progress_json(&self) -> String {
            "{\"total\":1}".to_string()
        }
        fn handle(&self, request: &HttpRequest) -> Option<HttpResponse> {
            match (request.method.as_str(), request.path.as_str()) {
                ("POST", "/job") => Some(HttpResponse::json(
                    202,
                    format!("{{\"echo\":{}}}", request.body.len()),
                )),
                ("GET", "/busy") => {
                    Some(HttpResponse::text(503, "overloaded\n").with_header("Retry-After", "7"))
                }
                _ => None,
            }
        }
    }

    #[test]
    fn get_and_post_round_trip() {
        // All request-issuing tests serialize on the test lock: an
        // installed faultnet plan is process-global.
        let _l = crate::testlock::locked();
        let mut server =
            serve("127.0.0.1:0", Arc::new(StubSource)).unwrap_or_else(|e| panic!("serve: {e}"));
        let addr = server.local_addr().to_string();
        let timeout = Duration::from_secs(5);

        let response = http_get(&addr, "/metrics", timeout).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(response.status, 200);
        assert!(response.is_success());
        assert!(response.body.contains("up 1"));
        assert!(response.retry_after.is_none());

        let response =
            http_post(&addr, "/job", "{\"m\":1}", timeout).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(response.status, 202);
        assert_eq!(response.body, "{\"echo\":7}");

        server.shutdown();
    }

    #[test]
    fn retry_after_is_parsed() {
        let _l = crate::testlock::locked();
        let mut server =
            serve("127.0.0.1:0", Arc::new(StubSource)).unwrap_or_else(|e| panic!("serve: {e}"));
        let addr = server.local_addr().to_string();
        let response =
            http_get(&addr, "/busy", Duration::from_secs(5)).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(response.status, 503);
        assert!(!response.is_success());
        assert_eq!(response.retry_after, Some(Duration::from_secs(7)));
        server.shutdown();
    }

    #[test]
    fn connection_refused_is_an_error() {
        let _l = crate::testlock::locked();
        // Bind-then-drop guarantees an unused port.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0")
                .unwrap_or_else(|e| panic!("bind: {e}"));
            l.local_addr().map(|a| a.port()).unwrap_or_else(|e| panic!("addr: {e}"))
        };
        let err = http_get(&format!("127.0.0.1:{port}"), "/metrics", Duration::from_millis(500));
        assert!(err.is_err(), "connect to a closed port should fail");
    }

    /// The satellite regression: a server that drips one byte at a
    /// time keeps every per-read timeout happy, so only a *total*
    /// deadline can end the request. Before the deadline fix this test
    /// ran for `body_len × drip_gap` ≈ forever.
    #[test]
    fn dripping_server_hits_the_total_deadline() {
        let _l = crate::testlock::locked();
        let listener =
            TcpListener::bind("127.0.0.1:0").unwrap_or_else(|e| panic!("bind: {e}"));
        let addr = listener.local_addr().unwrap_or_else(|e| panic!("addr: {e}")).to_string();
        let dripper = std::thread::spawn(move || {
            let (mut stream, _) = match listener.accept() {
                Ok(pair) => pair,
                Err(_) => return,
            };
            // Drain the request without parsing it.
            let mut sink = [0u8; 4096];
            let _ = io::Read::read(&mut stream, &mut sink);
            // Promise a large body, then drip it one byte per 50 ms —
            // each read makes progress, so a per-read timeout never
            // fires.
            let _ = stream.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 100000\r\n\r\n");
            for _ in 0..200 {
                if stream.write_all(b"x").is_err() {
                    return; // client gave up — the behavior under test
                }
                let _ = stream.flush();
                std::thread::sleep(Duration::from_millis(50));
            }
        });

        let started = Instant::now();
        let result = http_get(&addr, "/metrics", Duration::from_millis(400));
        let elapsed = started.elapsed();
        let err = match result {
            Err(e) => e,
            Ok(r) => panic!("drip-fed request unexpectedly succeeded: {}", r.status),
        };
        assert_eq!(err.kind(), io::ErrorKind::TimedOut, "got {err}");
        assert!(
            elapsed < Duration::from_secs(5),
            "deadline took {elapsed:?}; the drip outlived the budget"
        );
        drop(dripper); // detach: it exits on its next failed write
    }

    #[test]
    fn injected_refusal_and_duplicate_reply() {
        let _l = crate::testlock::locked();
        let mut server =
            serve("127.0.0.1:0", Arc::new(StubSource)).unwrap_or_else(|e| panic!("serve: {e}"));
        let addr = server.local_addr().to_string();

        // refuse_prob 1.0: every request refused, deterministically.
        {
            let _plan = InstalledPlan::new(&NetFaultPlan {
                refuse_prob: 1.0,
                ..NetFaultPlan::none(9)
            });
            let err = http_get(&addr, "/metrics", Duration::from_secs(2));
            match err {
                Err(e) => assert_eq!(e.kind(), io::ErrorKind::ConnectionRefused),
                Ok(_) => panic!("injected refusal did not refuse"),
            }
        }

        // duplicate_prob 1.0: the reply arrives twice; Content-Length
        // trimming must yield the first copy, cleanly.
        {
            let _plan = InstalledPlan::new(&NetFaultPlan {
                duplicate_prob: 1.0,
                ..NetFaultPlan::none(9)
            });
            let response =
                http_get(&addr, "/metrics", Duration::from_secs(2)).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(response.status, 200);
            assert_eq!(response.body, "up 1\n", "duplicate bytes leaked into the body");
        }

        // corrupt_prob 1.0: garbage status line must parse-fail, not
        // panic or mis-parse.
        {
            let _plan = InstalledPlan::new(&NetFaultPlan {
                corrupt_prob: 1.0,
                ..NetFaultPlan::none(9)
            });
            let err = http_get(&addr, "/metrics", Duration::from_secs(2));
            match err {
                Err(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidData),
                Ok(r) => panic!("corrupted status line parsed as {}", r.status),
            }
        }

        server.shutdown();
    }

    #[test]
    fn parse_trims_to_content_length_and_rejects_short_bodies() {
        let ok = parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi<duplicate junk>")
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(ok.body, "hi");

        let truncated = parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 50\r\n\r\nshort");
        assert!(truncated.is_err(), "short body must be rejected");

        let garbage_len = parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: banana\r\n\r\nhi");
        assert!(garbage_len.is_err(), "non-numeric content-length must be rejected");

        let no_len = parse_response(b"HTTP/1.1 200 OK\r\n\r\neverything to eof")
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(no_len.body, "everything to eof");

        let not_http = parse_response(b"XTTP/9.9 ?garbage?\r\n\r\nbody");
        assert!(not_http.is_err(), "non-HTTP status line must be rejected");
    }
}
