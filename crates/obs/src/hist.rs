//! Log-bucketed latency histograms with lock-free sharded recording.
//!
//! A [`Histogram`] is a `static` declared at the call site (usually
//! via the [`crate::histogram!`] / [`crate::timer!`] macros). Values
//! land in power-of-2 buckets: bucket 0 holds exactly 0, bucket *i*
//! (1 ≤ *i* ≤ 64) holds `[2^(i-1), 2^i)`. Quantiles read back from a
//! bucket's upper bound, so any quantile is exact to within a factor
//! of 2 of the true sample quantile — plenty for "did the p99 of
//! command issue double?" while costing 65 words per shard.
//!
//! # Overhead contract
//!
//! When observability is disabled ([`crate::enabled`] is false),
//! [`Histogram::record`] is **one relaxed atomic load** and a branch —
//! the same contract as every other `rh-obs` entry point, and the
//! bench-smoke CI job asserts it stays that way. When enabled, a
//! record is four relaxed atomic RMWs on a shard chosen by thread
//! ordinal, so concurrent hot paths do not contend on a single cache
//! line.
//!
//! Histograms are process-global and cumulative; [`reset_all`] runs on
//! [`crate::install`] so each recording session starts from zero.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Number of independent shards per histogram. Power of two so the
/// thread-ordinal modulo is a mask.
pub const NUM_SHARDS: usize = 8;

/// Bucket 0 for zero, buckets 1..=64 for each power-of-2 magnitude.
pub const NUM_BUCKETS: usize = 65;

/// Index of the bucket that `v` lands in.
#[must_use]
pub const fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of bucket `i` — the value a quantile falling
/// in that bucket reads back as (before clamping by the observed max).
#[must_use]
pub const fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

struct Shard {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl Shard {
    const fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Registry of every histogram that has recorded at least once, so
/// [`snapshot_all`] / [`reset_all`] can find call-site statics.
static REGISTRY: Mutex<Vec<&'static Histogram>> = Mutex::new(Vec::new());

fn registry() -> std::sync::MutexGuard<'static, Vec<&'static Histogram>> {
    match REGISTRY.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A lock-free, const-initializable latency histogram. Declare as a
/// `static` (the [`crate::histogram!`] and [`crate::timer!`] macros do
/// this per call site) and record raw `u64` values — by convention
/// nanoseconds for durations, with the unit in the name (`*.ns`).
pub struct Histogram {
    name: &'static str,
    registered: AtomicBool,
    shards: [Shard; NUM_SHARDS],
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("name", &self.name).finish_non_exhaustive()
    }
}

impl Histogram {
    /// Const constructor for `static` declarations.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            registered: AtomicBool::new(false),
            shards: [const { Shard::new() }; NUM_SHARDS],
        }
    }

    /// The histogram's registry name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records `v` if observability is enabled. Disabled cost: one
    /// relaxed atomic load and a branch.
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.record_always(v);
    }

    /// Records `v` unconditionally (used by tests and by guards that
    /// already checked `enabled`).
    pub fn record_always(&'static self, v: u64) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().push(self);
        }
        let shard = &self.shards[(crate::thread_ordinal() as usize) & (NUM_SHARDS - 1)];
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
        shard.max.fetch_max(v, Ordering::Relaxed);
        shard.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Starts a timer that records elapsed **nanoseconds** into this
    /// histogram on drop. Inert (no clock read) when created disabled.
    #[inline]
    pub fn timer(&'static self) -> TimerGuard {
        let start = if crate::enabled() { Some(Instant::now()) } else { None };
        TimerGuard { hist: self, start }
    }

    /// Merged view of all shards.
    #[must_use]
    pub fn snapshot(&self) -> HistSnapshot {
        let mut snap = HistSnapshot::empty(self.name);
        for shard in &self.shards {
            snap.count += shard.count.load(Ordering::Relaxed);
            snap.sum = snap.sum.saturating_add(shard.sum.load(Ordering::Relaxed));
            snap.max = snap.max.max(shard.max.load(Ordering::Relaxed));
            for (i, b) in shard.buckets.iter().enumerate() {
                snap.buckets[i] += b.load(Ordering::Relaxed);
            }
        }
        snap
    }

    fn reset(&self) {
        for shard in &self.shards {
            shard.reset();
        }
    }
}

/// Snapshots of every registered histogram with at least one recorded
/// value, sorted by name. Distinct call sites recording under the
/// same name are one time series: their snapshots are merged.
#[must_use]
pub fn snapshot_all() -> Vec<HistSnapshot> {
    let mut by_name: std::collections::BTreeMap<&'static str, HistSnapshot> =
        std::collections::BTreeMap::new();
    for h in registry().iter() {
        let s = h.snapshot();
        if s.count == 0 {
            continue;
        }
        match by_name.entry(s.name) {
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(&s),
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(s);
            }
        }
    }
    by_name.into_values().collect()
}

/// Zeroes every registered histogram. Called by [`crate::install`] so
/// a new recording session does not inherit a previous run's samples.
pub fn reset_all() {
    for h in registry().iter() {
        h.reset();
    }
}

/// Timer guard returned by [`Histogram::timer`]; records elapsed
/// nanoseconds on drop. Created-disabled guards stay inert.
#[derive(Debug)]
pub struct TimerGuard {
    hist: &'static Histogram,
    start: Option<Instant>,
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.hist.record(ns);
        }
    }
}

/// An immutable merged view of a histogram: counts per power-of-2
/// bucket plus exact count/sum/max. Merging two snapshots adds bucket
/// counts elementwise, so merge is associative and commutative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Histogram name.
    pub name: &'static str,
    /// Total recorded values.
    pub count: u64,
    /// Exact sum of recorded values (saturating).
    pub sum: u64,
    /// Exact maximum recorded value.
    pub max: u64,
    /// Count per bucket; bucket 0 is exactly 0, bucket `i` covers
    /// `[2^(i-1), 2^i)`.
    pub buckets: [u64; NUM_BUCKETS],
}

impl HistSnapshot {
    /// An empty snapshot (merge identity).
    #[must_use]
    pub fn empty(name: &'static str) -> Self {
        Self { name, count: 0, sum: 0, max: 0, buckets: [0; NUM_BUCKETS] }
    }

    /// Merges `other` into `self` (elementwise bucket add; exact for
    /// count/sum, max of max).
    pub fn merge(&mut self, other: &HistSnapshot) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// Mean of recorded values (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket upper bound
    /// clamped by the observed max; `None` when empty. The returned
    /// value is within a factor of 2 of the exact sample quantile.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the order statistic the quantile reads.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(bucket_hi(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Median (p50).
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 90th percentile.
    #[must_use]
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testlock::locked;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Every bucket's hi is the last value mapping into it.
        for i in 1..64 {
            assert_eq!(bucket_of(bucket_hi(i)), i);
            assert_eq!(bucket_of(bucket_hi(i) + 1), i + 1);
        }
        assert_eq!(bucket_hi(0), 0);
        assert_eq!(bucket_hi(64), u64::MAX);
    }

    #[test]
    fn record_and_quantiles() {
        let _l = locked();
        static H: Histogram = Histogram::new("test.hist.record_and_quantiles");
        for v in [0u64, 1, 2, 3, 100, 1000, 10_000] {
            H.record_always(v);
        }
        let s = H.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 11_106);
        assert_eq!(s.max, 10_000);
        // p50 of [0,1,2,3,100,1000,10000] is 3 exact; bucket answer
        // must be within a factor of 2 (bucket [2,4) reads back 3).
        assert_eq!(s.quantile(0.5), Some(3));
        // Max quantile is clamped by the exact max, not the bucket hi.
        assert_eq!(s.quantile(1.0), Some(10_000));
        assert_eq!(s.quantile(0.0), Some(0));
    }

    #[test]
    fn merge_is_commutative_and_has_identity() {
        let _l = locked();
        static A: Histogram = Histogram::new("test.hist.merge_a");
        static B: Histogram = Histogram::new("test.hist.merge_b");
        for v in [5u64, 9, 17] {
            A.record_always(v);
        }
        for v in [1u64, 1_000_000] {
            B.record_always(v);
        }
        let (a, b) = (A.snapshot(), B.snapshot());
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.count, ba.count);
        assert_eq!(ab.sum, ba.sum);
        assert_eq!(ab.max, ba.max);
        assert_eq!(ab.buckets, ba.buckets);
        let mut with_id = a.clone();
        with_id.merge(&HistSnapshot::empty("id"));
        assert_eq!(with_id.buckets, a.buckets);
    }

    #[test]
    fn snapshot_all_sees_registered_histograms() {
        let _l = locked();
        static H: Histogram = Histogram::new("test.hist.snapshot_all");
        H.record_always(42);
        let snaps = snapshot_all();
        assert!(snaps.iter().any(|s| s.name == "test.hist.snapshot_all" && s.count >= 1));
    }

    #[test]
    fn empty_snapshot_quantile_is_none() {
        let s = HistSnapshot::empty("e");
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn sharded_recording_merges_across_threads() {
        let _l = locked();
        static H: Histogram = Histogram::new("test.hist.sharded");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for v in 1..=250u64 {
                        H.record_always(v);
                    }
                })
            })
            .collect();
        for h in handles {
            let _ = h.join();
        }
        let s = H.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 4 * (250 * 251 / 2));
        assert_eq!(s.max, 250);
    }
}
