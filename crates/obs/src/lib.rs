#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Lightweight observability for the RowHammer reproduction stack.
//!
//! The real SoftMC rigs behind the MICRO '21 sensitivities paper are
//! trusted because their runs are *inspectable*: command counts,
//! per-phase timings, and fault logs exist for every campaign. This
//! crate provides the simulated equivalent — a process-global sink
//! that instrumentation points throughout `rh-softmc`, `rh-dram`,
//! `rh-core`, and `rh-defense` feed with:
//!
//! - **counters** — monotonic tallies (`softmc.cmd.act`, `dram.flip`),
//! - **gauges** — last-write-wins measurements (`dram.rows_stored`),
//! - **events** — timestamped records with fields
//!   (`campaign.quarantine { module, attempts, error }`),
//! - **spans** — scoped timers emitted on drop (`core.hc_first`).
//!
//! # Overhead contract
//!
//! With no sink installed every call is one relaxed atomic load and a
//! branch; `span()` does not even read the clock. Instrumentation is
//! therefore safe to leave in hot paths (the temperature-sweep bench
//! must regress < 5 % with observability disabled). With a sink
//! installed, cost is whatever the sink does — [`Recorder`] takes one
//! mutex per record, intended for campaign-scale runs, not per-command
//! inner loops at Paper scale.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//!
//! let rec = Arc::new(rh_obs::Recorder::new());
//! rh_obs::install(rec.clone());
//! rh_obs::counter("softmc.cmd.act", 2);
//! {
//!     let mut s = rh_obs::span("core.hc_first");
//!     s.set("row", 1024u64);
//! } // span recorded on drop
//! rh_obs::event("campaign.retry", &[("attempt", 2u64.into())]);
//! rh_obs::uninstall();
//!
//! assert_eq!(rec.counter_value("softmc.cmd.act"), 2);
//! let jsonl = rec.to_jsonl();
//! assert!(jsonl.lines().count() >= 2);
//! ```

pub mod analyze;
pub mod client;
pub mod export;
pub mod faultnet;
pub mod hist;
pub mod names;
mod recorder;
pub mod serve;
pub mod stream;
pub mod trace;

pub use client::{http_get, http_post, ClientResponse};
pub use faultnet::{NetFault, NetFaultInjector, NetFaultPlan};
pub use export::{FederationHub, RollupPublisher};
pub use stream::{EventBatch, EventDedup, EventKind, EventRing, JobEvent};
pub use hist::{HistSnapshot, Histogram, TimerGuard};
pub use recorder::{Recorder, SpanStat, TraceRecord};
pub use trace::{
    current_context, format_traceparent, parse_traceparent, set_remote_parent, SpanIds,
    TraceContext,
};
pub use serve::{
    serve, serve_with, HttpRequest, HttpResponse, ServeConfig, TelemetryServer, TelemetrySource,
};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// A dynamically typed field value attached to events and spans.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl FieldValue {
    /// Renders the value as a JSON fragment onto `out`.
    pub(crate) fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            FieldValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            FieldValue::Str(s) => recorder::push_json_string(out, s),
            FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(i64::from(v))
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// Destination for observability records. Implementations must be
/// cheap enough for the contexts they are installed in and must not
/// panic (a panicking sink would poison unrelated instrumented code).
pub trait Sink: Send + Sync {
    /// A monotonic counter incremented by `delta`.
    fn counter(&self, name: &'static str, delta: u64);
    /// A last-write-wins gauge.
    fn gauge(&self, name: &'static str, value: f64);
    /// A point-in-time event with fields.
    fn event(&self, name: &'static str, fields: &[(&'static str, FieldValue)]);
    /// A completed span of `elapsed` wall time.
    fn span_end(&self, name: &'static str, elapsed: Duration, fields: &[(&'static str, FieldValue)]);
    /// A completed span carrying distributed-trace identity. The
    /// default forwards to [`span_end`](Self::span_end), so sinks
    /// that do not care about trace IDs need not change.
    fn span_end_ids(
        &self,
        name: &'static str,
        elapsed: Duration,
        ids: SpanIds,
        fields: &[(&'static str, FieldValue)],
    ) {
        let _ = ids;
        self.span_end(name, elapsed, fields);
    }
    /// The sink's own monotonic clock in microseconds, if it has one.
    /// The fleet coordinator uses this to bracket worker replies for
    /// clock-skew normalization; sinks without a stable clock return
    /// `None` (the default).
    fn now_us(&self) -> Option<u64> {
        None
    }
}

/// Fast-path switch: avoids taking the sink lock when disabled.
static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);

fn with_sink(f: impl FnOnce(&dyn Sink)) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let guard = match SINK.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(sink) = guard.as_ref() {
        f(sink.as_ref());
    }
}

/// Installs `sink` as the process-global observability sink and
/// enables instrumentation. Replaces any previous sink and zeroes all
/// registered [`hist::Histogram`]s so the new session starts fresh.
pub fn install(sink: Arc<dyn Sink>) {
    hist::reset_all();
    let mut guard = match SINK.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    *guard = Some(sink);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disables instrumentation and removes the global sink, returning it
/// (so a caller holding only the `Arc<dyn Sink>` can still export).
pub fn uninstall() -> Option<Arc<dyn Sink>> {
    ENABLED.store(false, Ordering::SeqCst);
    let mut guard = match SINK.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    guard.take()
}

/// Whether a sink is currently installed. Instrumentation points may
/// use this to skip building expensive field values.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

static NEXT_THREAD_ORDINAL: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ORDINAL: u64 = NEXT_THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed);
}

/// A small dense per-thread ordinal (0, 1, 2, …) assigned on first
/// use; histogram shards index by it so short-lived worker pools map
/// onto distinct shards. Falls back to 0 during thread teardown.
pub fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.try_with(|o| *o).unwrap_or(0)
}

/// Increments counter `name` by `delta`. No-op when disabled.
pub fn counter(name: &'static str, delta: u64) {
    with_sink(|s| s.counter(name, delta));
}

/// Sets gauge `name` to `value`. No-op when disabled.
pub fn gauge(name: &'static str, value: f64) {
    with_sink(|s| s.gauge(name, value));
}

/// Records event `name` with `fields`. No-op when disabled.
pub fn event(name: &'static str, fields: &[(&'static str, FieldValue)]) {
    with_sink(|s| s.event(name, fields));
}

/// Starts a scoped timer; the span is emitted when the guard drops.
/// When disabled at creation the guard is inert (no clock read, no
/// trace IDs minted — one relaxed atomic load total) and stays inert
/// even if a sink is installed before it drops. When enabled, the
/// span joins the thread's current distributed trace (minting a fresh
/// trace when there is none) and becomes the current context until
/// the guard drops; see [`trace`].
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name,
            start: None,
            fields: Vec::new(),
            ids: SpanIds::none(),
            prev: (0, 0),
        };
    }
    let (ids, prev) = trace::enter_span();
    SpanGuard { name, start: Some(Instant::now()), fields: Vec::new(), ids, prev }
}

/// Guard returned by [`span`]; emits a `span_end` record on drop.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
    fields: Vec<(&'static str, FieldValue)>,
    ids: SpanIds,
    prev: (u128, u64),
}

impl SpanGuard {
    /// Attaches a field to the span (no-op on an inert guard).
    pub fn set(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.start.is_some() {
            self.fields.push((key, value.into()));
        }
    }

    /// The span's distributed-trace identity ([`SpanIds::none`] on an
    /// inert guard).
    #[must_use]
    pub fn ids(&self) -> SpanIds {
        self.ids
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            trace::exit_span(self.prev);
            let elapsed = start.elapsed();
            let fields = std::mem::take(&mut self.fields);
            with_sink(|s| s.span_end_ids(self.name, elapsed, self.ids, &fields));
        }
    }
}

/// Opens a span with optional inline fields:
/// `span!("core.hc_first", row = victim.0, cap = 512u64)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let mut __rh_obs_span = $crate::span($name);
        $(__rh_obs_span.set(stringify!($key), $value);)+
        __rh_obs_span
    }};
}

/// Records event `$name`, building the field list — conversions,
/// `to_string()` calls in field expressions, everything — only when a
/// sink is installed:
/// `event!(names::CAMPAIGN_RETRY_EVENT, module = id.as_str(), attempt = n)`.
/// The disabled path is a single relaxed atomic load with zero
/// formatting or allocation, so it is safe in hot paths where the
/// bare [`event`] function would eagerly evaluate its arguments.
#[macro_export]
macro_rules! event {
    ($name:expr $(,)?) => {
        if $crate::enabled() {
            $crate::event($name, &[]);
        }
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::event($name, &[$((stringify!($key), $crate::FieldValue::from($value))),+]);
        }
    };
}

/// Records `value` into a per-call-site static [`hist::Histogram`]:
/// `histogram!(rh_obs::names::DRAM_HAMMER_NS, elapsed_ns)`. The name
/// must be a constant expression. Disabled cost: one relaxed load.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {{
        static __RH_OBS_HIST: $crate::hist::Histogram = $crate::hist::Histogram::new($name);
        __RH_OBS_HIST.record($value);
    }};
}

/// Starts a scoped timer recording elapsed nanoseconds into a
/// per-call-site static [`hist::Histogram`] when the guard drops:
/// `let _t = timer!(rh_obs::names::CAMPAIGN_MODULE_NS);`. Inert (no
/// clock read) when observability is disabled at creation.
#[macro_export]
macro_rules! timer {
    ($name:expr) => {{
        static __RH_OBS_HIST: $crate::hist::Histogram = $crate::hist::Histogram::new($name);
        __RH_OBS_HIST.timer()
    }};
}

/// The sink and histogram registry are process-global; unit tests
/// that install a sink (which resets histograms) or read the registry
/// must serialize on this lock.
#[cfg(test)]
pub(crate) mod testlock {
    use std::sync::{Mutex, MutexGuard};

    static TEST_LOCK: Mutex<()> = Mutex::new(());

    pub(crate) fn locked() -> MutexGuard<'static, ()> {
        match TEST_LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testlock::locked;

    #[test]
    fn disabled_is_inert() {
        let _l = locked();
        uninstall();
        assert!(!enabled());
        counter("x", 1);
        gauge("y", 2.0);
        event("z", &[("a", 1u64.into())]);
        let mut s = span("w");
        s.set("k", "v");
        drop(s);
        // Nothing to observe: just must not panic or leak.
    }

    #[test]
    fn counters_events_spans_reach_the_sink() {
        let _l = locked();
        let rec = Arc::new(Recorder::new());
        install(rec.clone());
        counter("softmc.cmd", 3);
        counter("softmc.cmd", 2);
        gauge("temp_c", 85.0);
        event("campaign.retry", &[("attempt", 1u64.into()), ("module", "B-0".into())]);
        {
            let _s = span!("core.hc_first", row = 1024u32);
        }
        uninstall();
        assert_eq!(rec.counter_value("softmc.cmd"), 5);
        assert_eq!(rec.gauge_value("temp_c"), Some(85.0));
        assert_eq!(rec.events_named("campaign.retry"), 1);
        let spans = rec.span_stats();
        assert_eq!(spans.get("core.hc_first").map(|s| s.count), Some(1));
    }

    #[test]
    fn span_guard_created_disabled_stays_inert() {
        let _l = locked();
        uninstall();
        let s = span("late");
        let rec = Arc::new(Recorder::new());
        install(rec.clone());
        drop(s);
        uninstall();
        assert!(rec.span_stats().is_empty());
    }

    #[test]
    fn uninstall_returns_the_sink() {
        let _l = locked();
        let rec = Arc::new(Recorder::new());
        install(rec);
        counter("a", 1);
        let got = uninstall().expect("sink was installed");
        drop(got);
        assert!(uninstall().is_none());
    }

    #[test]
    fn histogram_macro_respects_enabled() {
        let _l = locked();
        uninstall();
        // Disabled: record is dropped before touching the shards.
        histogram!("test.lib.hist_macro", 9999);
        let rec = Arc::new(Recorder::new());
        install(rec);
        histogram!("test.lib.hist_macro", 7);
        histogram!("test.lib.hist_macro", 130);
        uninstall();
        let snaps = hist::snapshot_all();
        let s = snaps
            .iter()
            .find(|s| s.name == "test.lib.hist_macro")
            .unwrap_or_else(|| panic!("histogram not registered"));
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 137);
        assert_eq!(s.max, 130);
    }

    #[test]
    fn timer_macro_records_nanoseconds() {
        let _l = locked();
        let rec = Arc::new(Recorder::new());
        install(rec);
        {
            let _t = timer!("test.lib.timer_macro");
            std::thread::sleep(Duration::from_millis(2));
        }
        uninstall();
        let snaps = hist::snapshot_all();
        let s = snaps
            .iter()
            .find(|s| s.name == "test.lib.timer_macro")
            .unwrap_or_else(|| panic!("timer histogram not registered"));
        assert_eq!(s.count, 1);
        assert!(s.max >= 2_000_000, "timer recorded {} ns, expected >= 2 ms", s.max);
    }

    #[test]
    fn timer_created_disabled_stays_inert() {
        let _l = locked();
        uninstall();
        let t = timer!("test.lib.timer_inert");
        let rec = Arc::new(Recorder::new());
        install(rec);
        drop(t);
        uninstall();
        assert!(!hist::snapshot_all().iter().any(|s| s.name == "test.lib.timer_inert"));
    }

    #[test]
    fn event_macro_builds_fields_only_when_enabled() {
        let _l = locked();
        uninstall();
        // Disabled: the field expressions must not even be evaluated.
        let mut evaluated = false;
        event!("test.lib.event_macro", probe = {
            evaluated = true;
            1u64
        });
        assert!(!evaluated, "disabled event! evaluated its fields");
        let rec = Arc::new(Recorder::new());
        install(rec.clone());
        event!("test.lib.event_macro", module = "B-3", attempt = 2u64);
        event!("test.lib.event_bare");
        uninstall();
        assert_eq!(rec.events_named("test.lib.event_macro"), 1);
        assert_eq!(rec.events_named("test.lib.event_bare"), 1);
        let records = rec.records();
        let rec_fields = &records
            .iter()
            .find(|r| r.name == "test.lib.event_macro")
            .unwrap_or_else(|| panic!("event missing"))
            .fields;
        assert_eq!(rec_fields[0], ("module".to_string(), FieldValue::Str("B-3".into())));
        assert_eq!(rec_fields[1], ("attempt".to_string(), FieldValue::U64(2)));
    }

    #[test]
    fn thread_ordinals_are_distinct() {
        let a = thread_ordinal();
        let b = std::thread::spawn(thread_ordinal)
            .join()
            .unwrap_or_else(|_| panic!("ordinal thread panicked"));
        assert_ne!(a, b);
        assert_eq!(a, thread_ordinal());
    }

    #[test]
    fn field_value_conversions() {
        assert_eq!(FieldValue::from(3u32), FieldValue::U64(3));
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-3i32), FieldValue::I64(-3));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
        assert_eq!(FieldValue::from("s"), FieldValue::Str("s".into()));
    }
}
