//! Offline trace analysis: span-tree reconstruction and reporting
//! over the JSONL traces the [`crate::Recorder`] exports.
//!
//! The recorder emits spans **at drop**, so a trace is ordered by span
//! *end* time and carries no parent pointers. Reconstruction exploits
//! the nesting discipline of scoped guards: within one thread, a span
//! that starts no earlier and ends no later than a later-emitted span
//! is its descendant. Records are replayed in file order keeping a
//! per-thread stack of completed subtrees; each new span adopts the
//! trailing subtrees its interval covers. Traces written before the
//! recorder stamped thread ids (`tid`) collapse onto thread 0, which
//! is exact for single-threaded phases and merely conservative for
//! parallel ones.
//!
//! Timestamps are truncated to microseconds, so a child's computed
//! start can precede its parent's by 1 µs; containment checks carry a
//! ±1 µs tolerance. Spans the tolerance cannot attach become roots
//! rather than being dropped.
//!
//! The analyzer is pure string-in/report-out (the JSON parser is
//! hand-rolled; `rh-stats` supplies the duration-distribution
//! rendering), so it works on a trace from any source that follows
//! the schema in DESIGN.md §7.

use rh_stats::Histogram1d;
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------------

/// A parsed JSON value (just enough for trace and metrics files).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer, kept exact: lease and span IDs exceed f64's 53-bit
    /// integer range, and rounding them would alias distinct leases.
    Int(i64),
    /// Any non-integer (or i64-overflowing) number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64 if it is a non-negative integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an i64 if it is an integral number in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Num(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one JSON document from `src` (trailing whitespace allowed).
///
/// # Errors
///
/// A human-readable message with a byte offset on malformed input.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let mut p = Parser { b: src.as_bytes(), i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| format!("non-utf8 number at byte {start}"))?;
        if !text.bytes().any(|c| matches!(c, b'.' | b'e' | b'E')) {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| "non-utf8 \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.i += 4;
                            // Surrogates and other invalid scalars degrade to
                            // U+FFFD; trace strings never contain them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i - 1)),
                    }
                }
                _ => {
                    // Re-sync to char boundary: take the full UTF-8 sequence.
                    let len = utf8_len(c);
                    let end = (self.i - 1 + len).min(self.b.len());
                    let chunk = std::str::from_utf8(&self.b[self.i - 1..end])
                        .map_err(|_| format!("non-utf8 string at byte {}", self.i - 1))?;
                    out.push_str(chunk);
                    self.i = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let value = self.value()?;
            members.push((key, value));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

// ---------------------------------------------------------------------------
// Span-tree reconstruction
// ---------------------------------------------------------------------------

/// One reconstructed span with its adopted descendants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Emitting thread (0 for pre-`tid` traces).
    pub tid: u64,
    /// Computed start: end timestamp minus elapsed, microseconds.
    pub start_us: u64,
    /// End timestamp, microseconds since recorder creation.
    pub end_us: u64,
    /// Child spans, in start order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Wall time of this span.
    #[must_use]
    pub fn elapsed_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Wall time not covered by children (clock truncation can make
    /// children sum past the parent; self time saturates at 0).
    #[must_use]
    pub fn self_us(&self) -> u64 {
        let child_total: u64 = self.children.iter().map(SpanNode::elapsed_us).sum();
        self.elapsed_us().saturating_sub(child_total)
    }
}

/// Aggregate over every span (or every root) sharing a name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameAgg {
    /// Span name.
    pub name: String,
    /// Occurrences.
    pub count: u64,
    /// Summed wall time, microseconds.
    pub total_us: u64,
    /// Summed self time, microseconds.
    pub self_us: u64,
    /// Longest single occurrence, microseconds.
    pub max_us: u64,
}

/// Everything extracted from one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Reconstructed span forest, in start order.
    pub roots: Vec<SpanNode>,
    /// Total spans in the trace.
    pub span_count: u64,
    /// Total events in the trace.
    pub event_count: u64,
    /// Event occurrences by name.
    pub event_counts: BTreeMap<String, u64>,
    /// Trace extent: latest end minus earliest start, microseconds.
    pub wall_us: u64,
    /// Lines that failed to parse and were skipped.
    pub skipped_lines: u64,
}

/// Parses a JSONL trace and reconstructs its span forest. Malformed
/// lines are skipped (and counted), so a trace truncated by a crash
/// still analyzes.
///
/// # Errors
///
/// When the input contains no parseable trace records at all.
pub fn analyze_trace(jsonl: &str) -> Result<Analysis, String> {
    let mut stacks: BTreeMap<u64, Vec<SpanNode>> = BTreeMap::new();
    let mut analysis = Analysis {
        roots: Vec::new(),
        span_count: 0,
        event_count: 0,
        event_counts: BTreeMap::new(),
        wall_us: 0,
        skipped_lines: 0,
    };
    let mut first_start = u64::MAX;
    let mut last_end = 0u64;
    let mut parsed_any = false;

    for line in jsonl.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(rec) = parse_json(line) else {
            analysis.skipped_lines += 1;
            continue;
        };
        let (Some(ts_us), Some(kind), Some(name)) = (
            rec.get("ts_us").and_then(Json::as_u64),
            rec.get("kind").and_then(Json::as_str),
            rec.get("name").and_then(Json::as_str),
        ) else {
            analysis.skipped_lines += 1;
            continue;
        };
        parsed_any = true;
        let tid = rec.get("tid").and_then(Json::as_u64).unwrap_or(0);
        match kind {
            "span" => {
                let elapsed = rec.get("elapsed_us").and_then(Json::as_u64).unwrap_or(0);
                let start = ts_us.saturating_sub(elapsed);
                first_start = first_start.min(start);
                last_end = last_end.max(ts_us);
                analysis.span_count += 1;
                let stack = stacks.entry(tid).or_default();
                let mut children = Vec::new();
                while stack.last().is_some_and(|prev| {
                    prev.start_us + 1 >= start && prev.end_us <= ts_us + 1
                }) {
                    if let Some(prev) = stack.pop() {
                        children.push(prev);
                    }
                }
                children.reverse();
                stack.push(SpanNode { name: name.to_string(), tid, start_us: start, end_us: ts_us, children });
            }
            _ => {
                first_start = first_start.min(ts_us);
                last_end = last_end.max(ts_us);
                analysis.event_count += 1;
                *analysis.event_counts.entry(name.to_string()).or_insert(0) += 1;
            }
        }
    }
    if !parsed_any {
        return Err("no parseable trace records".to_string());
    }
    analysis.roots = stacks.into_values().flatten().collect();
    analysis.roots.sort_by_key(|r| (r.start_us, r.tid));
    analysis.wall_us = last_end.saturating_sub(if first_start == u64::MAX { 0 } else { first_start });
    Ok(analysis)
}

impl Analysis {
    /// Per-name aggregates over every span in the forest, sorted by
    /// self time descending (the "hot spans" ranking).
    #[must_use]
    pub fn aggregates(&self) -> Vec<NameAgg> {
        let mut by_name: BTreeMap<&str, NameAgg> = BTreeMap::new();
        fn walk<'a>(node: &'a SpanNode, by_name: &mut BTreeMap<&'a str, NameAgg>) {
            let agg = by_name.entry(&node.name).or_insert_with(|| NameAgg {
                name: node.name.clone(),
                count: 0,
                total_us: 0,
                self_us: 0,
                max_us: 0,
            });
            agg.count += 1;
            agg.total_us += node.elapsed_us();
            agg.self_us += node.self_us();
            agg.max_us = agg.max_us.max(node.elapsed_us());
            for c in &node.children {
                walk(c, by_name);
            }
        }
        for r in &self.roots {
            walk(r, &mut by_name);
        }
        let mut aggs: Vec<NameAgg> = by_name.into_values().collect();
        aggs.sort_by(|a, b| b.self_us.cmp(&a.self_us).then_with(|| a.name.cmp(&b.name)));
        aggs
    }

    /// Per-name aggregates over the roots only — the campaign's
    /// top-level phases — sorted by total time descending.
    #[must_use]
    pub fn phases(&self) -> Vec<NameAgg> {
        let mut by_name: BTreeMap<&str, NameAgg> = BTreeMap::new();
        for r in &self.roots {
            let agg = by_name.entry(&r.name).or_insert_with(|| NameAgg {
                name: r.name.clone(),
                count: 0,
                total_us: 0,
                self_us: 0,
                max_us: 0,
            });
            agg.count += 1;
            agg.total_us += r.elapsed_us();
            agg.self_us += r.self_us();
            agg.max_us = agg.max_us.max(r.elapsed_us());
        }
        let mut aggs: Vec<NameAgg> = by_name.into_values().collect();
        aggs.sort_by(|a, b| b.total_us.cmp(&a.total_us).then_with(|| a.name.cmp(&b.name)));
        aggs
    }

    /// Folded-stack output (`parent;child;grandchild self_us`), the
    /// input format of Brendan Gregg's `flamegraph.pl` and of most
    /// flamegraph viewers. Identical paths are merged.
    #[must_use]
    pub fn folded_stacks(&self) -> String {
        let mut merged: BTreeMap<String, u64> = BTreeMap::new();
        fn walk(node: &SpanNode, prefix: &str, merged: &mut BTreeMap<String, u64>) {
            let path = if prefix.is_empty() {
                node.name.clone()
            } else {
                format!("{prefix};{}", node.name)
            };
            *merged.entry(path.clone()).or_insert(0) += node.self_us();
            for c in &node.children {
                walk(c, &path, merged);
            }
        }
        for r in &self.roots {
            walk(r, "", &mut merged);
        }
        let mut out = String::new();
        for (path, us) in &merged {
            let _ = writeln!(out, "{path} {us}");
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Strict parsing + multi-process fleet stitching
// ---------------------------------------------------------------------------

/// Validates every line of a JSONL trace *before* analysis: any
/// malformed or truncated record (e.g. a file cut mid-record by a
/// crash) fails with its 1-based line number instead of being
/// silently skipped and shrinking the tree.
///
/// # Errors
///
/// `"line N: <cause>"` on the first bad line, or the underlying
/// [`analyze_trace`] error on an empty trace.
pub fn analyze_trace_strict(jsonl: &str) -> Result<Analysis, String> {
    validate_jsonl(jsonl)?;
    analyze_trace(jsonl)
}

fn validate_jsonl(jsonl: &str) -> Result<(), String> {
    for (idx, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = parse_json(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        let complete = rec.get("ts_us").and_then(Json::as_u64).is_some()
            && rec.get("kind").and_then(Json::as_str).is_some()
            && rec.get("name").and_then(Json::as_str).is_some();
        if !complete {
            return Err(format!("line {}: record missing ts_us/kind/name", idx + 1));
        }
    }
    Ok(())
}

/// Metadata of one process segment in a stitched fleet trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Source file name (`coordinator.jsonl` / `segment-<lease>.jsonl`).
    pub file: String,
    /// Lease the segment belongs to (0 for the coordinator).
    pub lease: u64,
    /// Worker address, or `"coordinator"`.
    pub worker: String,
    /// Clock-skew correction applied to this segment's timestamps,
    /// microseconds of coordinator-clock minus worker-clock (None when
    /// the poll bracket was unavailable; the segment is then stitched
    /// unshifted).
    pub offset_us: Option<i64>,
    /// Records shed worker-side to fit the ship-back budget.
    pub shed: u64,
    /// Whether the lease had already expired when the segment shipped
    /// (a zombie's late result, kept for forensics).
    pub orphan: bool,
    /// Traced spans this segment contributed.
    pub spans: u64,
}

/// A span tree stitched across processes by explicit
/// `span_id -> parent_id` links, with per-segment clock-skew
/// normalization.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStitch {
    /// True roots (`parent_id == 0`); a healthy run has exactly one,
    /// the coordinator's `fleet.run` span.
    pub roots: Vec<SpanNode>,
    /// Subtrees whose parent span never arrived (killed worker, shed
    /// record): flagged here, never dropped.
    pub orphans: Vec<SpanNode>,
    /// Traced spans across all segments.
    pub span_count: u64,
    /// Events across all segments.
    pub event_count: u64,
    /// Event occurrences by name.
    pub event_counts: BTreeMap<String, u64>,
    /// `worker.job` spans from non-orphan segments — exactly one per
    /// committed job (zombie segments are excluded so duplicates from
    /// expired leases don't inflate the count).
    pub job_spans: u64,
    /// `fleet.dispatch.rpc` spans whose lease shipped no segment: the
    /// worker died or the job was re-dispatched before completing.
    pub orphan_dispatches: u64,
    /// Segments flagged orphan in their meta record.
    pub orphan_segments: u64,
    /// Per-segment metadata, in file order (coordinator first).
    pub segments: Vec<SegmentInfo>,
    /// Stitched trace extent on the coordinator clock, microseconds.
    pub wall_us: u64,
}

struct RawSpan {
    name: String,
    tid: u64,
    start_us: u64,
    end_us: u64,
    parent: u64,
    lease: Option<u64>,
}

fn parse_hex_id(rec: &Json, key: &str) -> Option<u64> {
    u64::from_str_radix(rec.get(key)?.as_str()?, 16).ok()
}

/// Stitches a fleet trace from `(file_name, jsonl)` pairs — one
/// `coordinator.jsonl` plus any number of `segment-<lease>.jsonl`
/// ship-backs. Strict: any malformed record fails with
/// `"<file>: line N: <cause>"`.
///
/// # Errors
///
/// On empty input, unreadable records, or a coordinator file with no
/// traced spans.
pub fn stitch_fleet(files: &[(String, String)]) -> Result<FleetStitch, String> {
    if files.is_empty() {
        return Err("fleet trace: no coordinator.jsonl or segment-*.jsonl inputs".to_string());
    }
    let mut spans: BTreeMap<u64, RawSpan> = BTreeMap::new();
    let mut segments: Vec<SegmentInfo> = Vec::new();
    let mut segment_leases: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    let mut event_count = 0u64;
    let mut event_counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut orphan_segments = 0u64;
    let mut job_spans = 0u64;

    for (fname, content) in files {
        validate_jsonl(content).map_err(|e| format!("{fname}: {e}"))?;
        let is_segment = fname.starts_with("segment-");
        let mut info = SegmentInfo {
            file: fname.clone(),
            lease: 0,
            worker: "coordinator".to_string(),
            offset_us: if is_segment { None } else { Some(0) },
            shed: 0,
            orphan: false,
            spans: 0,
        };
        let mut offset = 0i64;
        let mut file_job_spans = 0u64;
        for line in content.lines().filter(|l| !l.trim().is_empty()) {
            // Validated above; a failure here would be a logic error.
            let rec = parse_json(line).map_err(|e| format!("{fname}: {e}"))?;
            let kind = rec.get("kind").and_then(Json::as_str).unwrap_or("");
            let name = rec.get("name").and_then(Json::as_str).unwrap_or("");
            match kind {
                "meta" if name == crate::names::FLEET_TRACE_SEGMENT => {
                    let fields = rec.get("fields").cloned().unwrap_or(Json::Null);
                    info.lease = fields.get("lease").and_then(Json::as_u64).unwrap_or(0);
                    if let Some(w) = fields.get("worker").and_then(Json::as_str) {
                        info.worker = w.to_string();
                    }
                    info.offset_us = fields.get("offset_us").and_then(Json::as_i64);
                    info.shed = fields.get("shed").and_then(Json::as_u64).unwrap_or(0);
                    info.orphan = fields.get("orphan").and_then(Json::as_bool).unwrap_or(false);
                    offset = info.offset_us.unwrap_or(0);
                }
                "span" => {
                    // Only spans carrying explicit trace identity join
                    // the stitched tree; untraced spans from the same
                    // process belong to other work.
                    let Some(span_id) = parse_hex_id(&rec, "span_id") else { continue };
                    let parent = parse_hex_id(&rec, "parent_id").unwrap_or(0);
                    let ts = rec.get("ts_us").and_then(Json::as_u64).unwrap_or(0);
                    let elapsed = rec.get("elapsed_us").and_then(Json::as_u64).unwrap_or(0);
                    let end_us =
                        u64::try_from((i64::try_from(ts).unwrap_or(i64::MAX)).saturating_add(offset))
                            .unwrap_or(0);
                    let tid = rec.get("tid").and_then(Json::as_u64).unwrap_or(0);
                    let lease = rec
                        .get("fields")
                        .and_then(|f| f.get("lease"))
                        .and_then(Json::as_u64);
                    spans.insert(
                        span_id,
                        RawSpan {
                            name: name.to_string(),
                            tid,
                            start_us: end_us.saturating_sub(elapsed),
                            end_us,
                            parent,
                            lease,
                        },
                    );
                    info.spans += 1;
                    if name == crate::names::WORKER_JOB_SPAN {
                        file_job_spans += 1;
                    }
                }
                _ => {
                    event_count += 1;
                    *event_counts.entry(name.to_string()).or_insert(0) += 1;
                }
            }
        }
        if is_segment {
            segment_leases.insert(info.lease);
            if info.orphan {
                orphan_segments += 1;
            }
        }
        if !info.orphan {
            job_spans += file_job_spans;
        }
        segments.push(info);
    }

    // Adjacency by explicit parent link, then recursive assembly.
    let mut children: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut root_ids: Vec<u64> = Vec::new();
    let mut orphan_ids: Vec<u64> = Vec::new();
    for (&id, raw) in &spans {
        if raw.parent == 0 {
            root_ids.push(id);
        } else if spans.contains_key(&raw.parent) {
            children.entry(raw.parent).or_default().push(id);
        } else {
            orphan_ids.push(id);
        }
    }
    fn build(
        id: u64,
        spans: &BTreeMap<u64, RawSpan>,
        children: &BTreeMap<u64, Vec<u64>>,
        visited: &mut std::collections::BTreeSet<u64>,
    ) -> Option<SpanNode> {
        if !visited.insert(id) {
            return None; // cycle in corrupt input: keep the first visit
        }
        let raw = spans.get(&id)?;
        let mut kids: Vec<SpanNode> = children
            .get(&id)
            .into_iter()
            .flatten()
            .filter_map(|&c| build(c, spans, children, visited))
            .collect();
        kids.sort_by_key(|k| (k.start_us, k.tid));
        Some(SpanNode {
            name: raw.name.clone(),
            tid: raw.tid,
            start_us: raw.start_us,
            end_us: raw.end_us,
            children: kids,
        })
    }
    let mut visited = std::collections::BTreeSet::new();
    let mut roots: Vec<SpanNode> =
        root_ids.iter().filter_map(|&id| build(id, &spans, &children, &mut visited)).collect();
    roots.sort_by_key(|r| (r.start_us, r.tid));
    let mut orphans: Vec<SpanNode> =
        orphan_ids.iter().filter_map(|&id| build(id, &spans, &children, &mut visited)).collect();
    orphans.sort_by_key(|r| (r.start_us, r.tid));

    let orphan_dispatches = spans
        .values()
        .filter(|s| {
            s.name == crate::names::FLEET_DISPATCH_RPC
                && s.lease.is_some_and(|l| !segment_leases.contains(&l))
        })
        .count() as u64;
    let first_start = spans.values().map(|s| s.start_us).min().unwrap_or(0);
    let last_end = spans.values().map(|s| s.end_us).max().unwrap_or(0);

    Ok(FleetStitch {
        roots,
        orphans,
        span_count: spans.len() as u64,
        event_count,
        event_counts,
        job_spans,
        orphan_dispatches,
        orphan_segments,
        segments,
        wall_us: last_end.saturating_sub(first_start),
    })
}

/// Reads `coordinator.jsonl` + every `segment-*.jsonl` from a fleet
/// trace directory (as written by `repro fleet --trace-dir`) and
/// stitches them.
///
/// # Errors
///
/// On an unreadable directory/file or any malformed record
/// (`"<file>: line N: <cause>"`).
pub fn analyze_fleet_dir(dir: &std::path::Path) -> Result<FleetStitch, String> {
    let mut files: Vec<(String, String)> = Vec::new();
    let coord = dir.join("coordinator.jsonl");
    if coord.is_file() {
        let content = std::fs::read_to_string(&coord)
            .map_err(|e| format!("{}: {e}", coord.display()))?;
        files.push(("coordinator.jsonl".to_string(), content));
    }
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter(|n| n.starts_with("segment-") && n.ends_with(".jsonl"))
        .collect();
    names.sort();
    for name in names {
        let path = dir.join(&name);
        let content =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        files.push((name, content));
    }
    stitch_fleet(&files)
}

impl FleetStitch {
    /// Folds the stitch into a plain [`Analysis`] (orphan subtrees
    /// become extra roots) so the standard report, flamegraph, and
    /// histogram renderers apply unchanged.
    #[must_use]
    pub fn to_analysis(&self) -> Analysis {
        let mut roots = self.roots.clone();
        roots.extend(self.orphans.iter().cloned());
        roots.sort_by_key(|r| (r.start_us, r.tid));
        Analysis {
            roots,
            span_count: self.span_count,
            event_count: self.event_count,
            event_counts: self.event_counts.clone(),
            wall_us: self.wall_us,
            skipped_lines: 0,
        }
    }
}

fn render_tree(node: &SpanNode, depth: usize, orphan: bool, out: &mut String) {
    let _ = writeln!(
        out,
        "  {:indent$}{} {}{}",
        "",
        node.name,
        fmt_us(node.elapsed_us()),
        if orphan { " [orphan]" } else { "" },
        indent = depth * 2
    );
    for child in &node.children {
        render_tree(child, depth + 1, false, out);
    }
}

/// Renders the stitched-fleet summary: root/orphan accounting, the
/// cross-process span tree, and per-segment skew/shed lines.
#[must_use]
pub fn render_fleet_report(stitch: &FleetStitch) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet trace: {} root(s), {} spans, {} events across {} process segment(s), wall {}",
        stitch.roots.len(),
        stitch.span_count,
        stitch.event_count,
        stitch.segments.len(),
        fmt_us(stitch.wall_us),
    );
    let _ = writeln!(
        out,
        "  jobs: {} worker.job span(s); orphan spans: {}; orphan dispatches: {}; orphan segments: {}",
        stitch.job_spans,
        stitch.orphans.len(),
        stitch.orphan_dispatches,
        stitch.orphan_segments,
    );
    let _ = writeln!(out, "\nsegments:");
    for seg in &stitch.segments {
        let offset = seg
            .offset_us
            .map_or_else(|| "unknown".to_string(), |o| format!("{o:+}us"));
        let _ = writeln!(
            out,
            "  {:<28} worker={} lease={} spans={} skew={} shed={}{}",
            seg.file,
            seg.worker,
            seg.lease,
            seg.spans,
            offset,
            seg.shed,
            if seg.orphan { " [orphan]" } else { "" },
        );
    }
    let _ = writeln!(out, "\nspan tree (skew-normalized to the coordinator clock):");
    for root in &stitch.roots {
        render_tree(root, 0, false, &mut out);
    }
    for orphan in &stitch.orphans {
        render_tree(orphan, 0, true, &mut out);
    }
    out
}

// ---------------------------------------------------------------------------
// Metrics sidecar + report rendering
// ---------------------------------------------------------------------------

/// Extracts the `counters` map from a metrics snapshot JSON (the file
/// `--metrics-out` writes).
///
/// # Errors
///
/// On malformed JSON or a missing/ill-typed `counters` member.
pub fn parse_metrics_counters(json: &str) -> Result<BTreeMap<String, u64>, String> {
    let doc = parse_json(json)?;
    let Some(Json::Obj(members)) = doc.get("counters") else {
        return Err("metrics file has no 'counters' object".to_string());
    };
    let mut out = BTreeMap::new();
    for (k, v) in members {
        if let Some(n) = v.as_u64() {
            out.insert(k.clone(), n);
        }
    }
    Ok(out)
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

/// Renders the human-readable analysis report: phase breakdown, top-k
/// hot spans (self vs total time), span-duration distribution, event
/// counts, and — when a metrics snapshot is supplied — counter rates
/// (hammers/sec, commands/sec, flips/sec, …) over the trace extent.
#[must_use]
pub fn render_report(
    analysis: &Analysis,
    counters: Option<&BTreeMap<String, u64>>,
    top: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} spans, {} events, {} roots, wall {}{}",
        analysis.span_count,
        analysis.event_count,
        analysis.roots.len(),
        fmt_us(analysis.wall_us),
        if analysis.skipped_lines > 0 {
            format!(" ({} malformed lines skipped)", analysis.skipped_lines)
        } else {
            String::new()
        }
    );

    // A lossy trace silently skews every number below it — say so
    // before anything else, not in the counter fine print.
    if let Some(&dropped) =
        counters.and_then(|c| c.get(crate::names::OBS_DROPPED_RECORDS))
    {
        if dropped > 0 {
            let _ = writeln!(
                out,
                "\nWARNING: {dropped} trace record(s) were DROPPED by the recorder \
                 (memory cap or trace-file write error);\n\
                 \x20        span/event counts and rates below undercount the run"
            );
        }
    }

    let phases = analysis.phases();
    if !phases.is_empty() {
        let _ = writeln!(out, "\nphases (top-level spans):");
        let _ = writeln!(out, "  {:<28} {:>8} {:>12} {:>12} {:>7}", "name", "count", "total", "max", "%wall");
        for p in &phases {
            let pct = if analysis.wall_us > 0 {
                100.0 * p.total_us as f64 / analysis.wall_us as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<28} {:>8} {:>12} {:>12} {:>6.1}%",
                p.name,
                p.count,
                fmt_us(p.total_us),
                fmt_us(p.max_us),
                pct
            );
        }
    }

    let aggs = analysis.aggregates();
    if !aggs.is_empty() {
        let _ = writeln!(out, "\nhot spans (by self time, top {top}):");
        let _ = writeln!(
            out,
            "  {:<28} {:>8} {:>12} {:>12} {:>12}",
            "name", "count", "self", "total", "max"
        );
        for a in aggs.iter().take(top) {
            let _ = writeln!(
                out,
                "  {:<28} {:>8} {:>12} {:>12} {:>12}",
                a.name,
                a.count,
                fmt_us(a.self_us),
                fmt_us(a.total_us),
                fmt_us(a.max_us)
            );
        }
    }

    // Span-duration distribution on a log10 axis; rh-stats owns the
    // binning so the analyzer and the figure pipeline share one
    // histogram implementation.
    let mut durations: Vec<f64> = Vec::new();
    fn collect(node: &SpanNode, out: &mut Vec<f64>) {
        out.push((node.elapsed_us() as f64 + 1.0).log10());
        for c in &node.children {
            collect(c, out);
        }
    }
    for r in &analysis.roots {
        collect(r, &mut durations);
    }
    if !durations.is_empty() {
        let bins = 10usize.min(durations.len().max(1));
        let h = Histogram1d::of(&durations, bins);
        let peak = h.counts().iter().copied().max().unwrap_or(1).max(1);
        let _ = writeln!(out, "\nspan durations (log10 bins):");
        let width = (h.hi() - h.lo()) / h.counts().len() as f64;
        for (i, &c) in h.counts().iter().enumerate() {
            let lo_us = 10f64.powf(h.lo() + width * i as f64) - 1.0;
            let hi_us = 10f64.powf(h.lo() + width * (i + 1) as f64) - 1.0;
            let bar = "#".repeat(((c as f64 / peak as f64) * 40.0).round() as usize);
            let _ = writeln!(
                out,
                "  [{:>10} .. {:>10}) {:>8} {}",
                fmt_us(lo_us.max(0.0) as u64),
                fmt_us(hi_us.max(0.0) as u64),
                c,
                bar
            );
        }
    }

    if !analysis.event_counts.is_empty() {
        let _ = writeln!(out, "\nevents:");
        let mut events: Vec<(&String, &u64)> = analysis.event_counts.iter().collect();
        events.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        for (name, count) in events.iter().take(top) {
            let _ = writeln!(out, "  {name:<40} {count:>10}");
        }
    }

    if let Some(counters) = counters {
        let secs = analysis.wall_us as f64 / 1e6;
        let _ = writeln!(out, "\ncounter rates over {:.2}s:", secs);
        for (name, total) in counters {
            let rate = if secs > 0.0 { *total as f64 / secs } else { 0.0 };
            let _ = writeln!(out, "  {name:<40} {total:>12} {rate:>14.0}/s");
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Fleet journal analysis
// ---------------------------------------------------------------------------

/// Row filters for [`analyze_journal`]. `None` matches everything;
/// `kind` narrows only the counting tables, never the latency pairing
/// (filtering out `started` must not silently empty the percentiles).
#[derive(Debug, Clone, Default)]
pub struct JournalFilter {
    /// Keep only events attributed to this worker address.
    pub worker: Option<String>,
    /// Keep only events for this module id.
    pub module: Option<String>,
    /// Keep only this kind in the per-kind/worker/module tables.
    pub kind: Option<crate::stream::EventKind>,
}

/// Latency percentiles (µs) between one event pair, nearest-rank over
/// the sorted samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Number of `(from, to)` pairs found.
    pub samples: usize,
    /// Median.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Worst case.
    pub max_us: u64,
}

/// What [`analyze_journal`] extracts from a fleet journal.
#[derive(Debug, Clone)]
pub struct JournalAnalysis {
    /// Events that matched the filter.
    pub total: u64,
    /// Malformed journal lines (crash-truncated tail, corruption).
    pub skipped: u64,
    /// Matched events per kind wire name, in lifecycle order.
    pub by_kind: Vec<(&'static str, u64)>,
    /// Matched events per source worker.
    pub by_worker: BTreeMap<String, u64>,
    /// Matched events per module.
    pub by_module: BTreeMap<String, u64>,
    /// Distinct lease ids seen (excluding the worker-global lease 0).
    pub leases: u64,
    /// Lease ids carrying more than one terminal event — always zero
    /// when the coordinator's `(lease_id, seq)` dedup held.
    pub multi_terminal_leases: u64,
    /// The `from -> to` pair the latency stats cover.
    pub pair: (crate::stream::EventKind, crate::stream::EventKind),
    /// Latency between the pair, per `(worker, lease)`.
    pub latency: LatencyStats,
}

fn nearest_rank(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * pct / 100]
}

/// Analyzes a fleet `journal.jsonl`: per-kind/worker/module counts
/// under `filter`, an exactly-once sanity check (no lease may carry
/// two terminal events), and latency percentiles from the first
/// `from`-kind to the first subsequent `to`-kind event of each
/// `(worker, lease)` — per worker because `ts_us` is each worker's
/// own monotonic clock and is not comparable across machines.
#[must_use]
pub fn analyze_journal(
    text: &str,
    filter: &JournalFilter,
    from: crate::stream::EventKind,
    to: crate::stream::EventKind,
) -> JournalAnalysis {
    use crate::stream::EventKind;
    let parsed = crate::stream::parse_events(text);
    let mut out = JournalAnalysis {
        total: 0,
        skipped: parsed.skipped,
        by_kind: Vec::new(),
        by_worker: BTreeMap::new(),
        by_module: BTreeMap::new(),
        leases: 0,
        multi_terminal_leases: 0,
        pair: (from, to),
        latency: LatencyStats::default(),
    };
    let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut terminals: BTreeMap<u64, u64> = BTreeMap::new();
    let mut pairs: BTreeMap<(String, u64), (Option<u64>, Option<u64>)> = BTreeMap::new();
    let mut leases: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for ev in &parsed.events {
        if filter.worker.as_deref().is_some_and(|w| w != ev.worker) {
            continue;
        }
        if filter.module.as_deref().is_some_and(|m| m != ev.module) {
            continue;
        }
        if ev.lease_id != 0 {
            leases.insert(ev.lease_id);
            if ev.kind.is_terminal() {
                *terminals.entry(ev.lease_id).or_insert(0) += 1;
            }
            let slot = pairs.entry((ev.worker.clone(), ev.lease_id)).or_insert((None, None));
            if ev.kind == from && slot.0.is_none() {
                slot.0 = Some(ev.ts_us);
            }
            if ev.kind == to && slot.1.is_none() {
                slot.1 = Some(ev.ts_us);
            }
        }
        if filter.kind.is_some_and(|k| k != ev.kind) {
            continue;
        }
        out.total += 1;
        *by_kind.entry(ev.kind.as_str()).or_insert(0) += 1;
        *out.by_worker.entry(ev.worker.clone()).or_insert(0) += 1;
        *out.by_module.entry(ev.module.clone()).or_insert(0) += 1;
    }
    out.by_kind = EventKind::ALL
        .into_iter()
        .filter_map(|k| by_kind.get(k.as_str()).map(|&n| (k.as_str(), n)))
        .collect();
    out.leases = leases.len() as u64;
    out.multi_terminal_leases = terminals.values().filter(|&&n| n > 1).count() as u64;
    let mut samples: Vec<u64> = pairs
        .values()
        .filter_map(|&(f, t)| match (f, t) {
            (Some(f), Some(t)) if t >= f => Some(t - f),
            _ => None,
        })
        .collect();
    samples.sort_unstable();
    out.latency = LatencyStats {
        samples: samples.len(),
        p50_us: nearest_rank(&samples, 50),
        p90_us: nearest_rank(&samples, 90),
        p99_us: nearest_rank(&samples, 99),
        max_us: samples.last().copied().unwrap_or(0),
    };
    out
}

/// Renders the journal analysis as the `repro analyze journal` report.
#[must_use]
pub fn render_journal_report(a: &JournalAnalysis) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "journal: {} event(s), {} lease(s), {} worker(s){}",
        a.total,
        a.leases,
        a.by_worker.len(),
        if a.skipped > 0 {
            format!(" ({} malformed line(s) skipped)", a.skipped)
        } else {
            String::new()
        }
    );
    if a.multi_terminal_leases > 0 {
        let _ = writeln!(
            out,
            "\nWARNING: {} lease(s) carry more than one terminal event \
             (exactly-once violated)",
            a.multi_terminal_leases
        );
    }
    if !a.by_kind.is_empty() {
        let _ = writeln!(out, "\nevents by kind:");
        for (kind, n) in &a.by_kind {
            let _ = writeln!(out, "  {kind:<12} {n:>8}");
        }
    }
    if !a.by_worker.is_empty() {
        let _ = writeln!(out, "\nevents by worker:");
        for (worker, n) in &a.by_worker {
            let _ = writeln!(out, "  {worker:<24} {n:>8}");
        }
    }
    if !a.by_module.is_empty() {
        let _ = writeln!(out, "\nevents by module:");
        for (module, n) in &a.by_module {
            let _ = writeln!(out, "  {module:<28} {n:>8}");
        }
    }
    let _ = writeln!(
        out,
        "\nlatency {} -> {} (per worker+lease): {} sample(s)",
        a.pair.0.as_str(),
        a.pair.1.as_str(),
        a.latency.samples
    );
    if a.latency.samples > 0 {
        let _ = writeln!(
            out,
            "  p50 {}  p90 {}  p99 {}  max {}",
            fmt_us(a.latency.p50_us),
            fmt_us(a.latency.p90_us),
            fmt_us(a.latency.p99_us),
            fmt_us(a.latency.max_us),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_roundtrips_trace_shapes() {
        let v = parse_json(
            r#"{"ts_us":12,"kind":"event","name":"a.b","tid":3,"fields":{"s":"q\"x","n":-2.5,"b":true,"z":null,"arr":[1,2]}}"#,
        )
        .unwrap_or_else(|e| panic!("parse failed: {e}"));
        assert_eq!(v.get("ts_us").and_then(Json::as_u64), Some(12));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("event"));
        let fields = v.get("fields").unwrap_or(&Json::Null);
        assert_eq!(fields.get("s").and_then(Json::as_str), Some("q\"x"));
        assert_eq!(fields.get("n"), Some(&Json::Num(-2.5)));
        assert_eq!(fields.get("b"), Some(&Json::Bool(true)));
        assert_eq!(fields.get("z"), Some(&Json::Null));
        assert_eq!(fields.get("arr"), Some(&Json::Arr(vec![Json::Int(1), Json::Int(2)])));
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} x").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn reconstructs_nesting_from_end_ordered_records() {
        // child: [60, 100); parent: [10, 110) — child emitted first.
        let trace = concat!(
            r#"{"ts_us":100,"kind":"span","name":"child","elapsed_us":40,"fields":{}}"#,
            "\n",
            r#"{"ts_us":110,"kind":"span","name":"parent","elapsed_us":100,"fields":{}}"#,
            "\n",
        );
        let a = analyze_trace(trace).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(a.roots.len(), 1);
        assert_eq!(a.roots[0].name, "parent");
        assert_eq!(a.roots[0].children.len(), 1);
        assert_eq!(a.roots[0].children[0].name, "child");
        assert_eq!(a.roots[0].self_us(), 60);
        assert_eq!(a.roots[0].children[0].self_us(), 40);
        assert_eq!(a.span_count, 2);
        assert_eq!(a.wall_us, 100);
    }

    #[test]
    fn sibling_spans_stay_siblings() {
        // Two siblings [0,40) and [50,90) under parent [0,100).
        let trace = concat!(
            r#"{"ts_us":40,"kind":"span","name":"s1","elapsed_us":40,"fields":{}}"#,
            "\n",
            r#"{"ts_us":90,"kind":"span","name":"s2","elapsed_us":40,"fields":{}}"#,
            "\n",
            r#"{"ts_us":100,"kind":"span","name":"parent","elapsed_us":100,"fields":{}}"#,
            "\n",
        );
        let a = analyze_trace(trace).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(a.roots.len(), 1);
        let kids: Vec<&str> = a.roots[0].children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(kids, vec!["s1", "s2"]);
        assert_eq!(a.roots[0].self_us(), 20);
    }

    #[test]
    fn threads_partition_the_forest_and_missing_tid_defaults_to_zero() {
        // Identical intervals on two threads must NOT nest; the first
        // record has no tid field at all (a pre-tid trace).
        let trace = concat!(
            r#"{"ts_us":50,"kind":"span","name":"a","elapsed_us":50,"fields":{}}"#,
            "\n",
            r#"{"ts_us":60,"kind":"span","name":"b","elapsed_us":60,"tid":7,"fields":{}}"#,
            "\n",
        );
        let a = analyze_trace(trace).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(a.roots.len(), 2);
        assert_eq!(a.roots.iter().map(|r| r.tid).collect::<Vec<_>>(), vec![0, 7]);
    }

    #[test]
    fn events_are_counted_and_malformed_lines_skipped() {
        let trace = concat!(
            r#"{"ts_us":5,"kind":"event","name":"campaign.retry","fields":{}}"#,
            "\n",
            "this is not json\n",
            r#"{"ts_us":9,"kind":"event","name":"campaign.retry","fields":{}}"#,
            "\n",
            r#"{"ts_us":20,"kind":"span","name":"root","elapsed_us":18,"fields":{}}"#,
            "\n",
        );
        let a = analyze_trace(trace).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(a.event_count, 2);
        assert_eq!(a.event_counts.get("campaign.retry"), Some(&2));
        assert_eq!(a.skipped_lines, 1);
        assert_eq!(a.span_count, 1);
    }

    #[test]
    fn empty_trace_is_an_error() {
        assert!(analyze_trace("").is_err());
        assert!(analyze_trace("not json\n").is_err());
    }

    #[test]
    fn folded_stacks_merge_identical_paths() {
        let trace = concat!(
            r#"{"ts_us":30,"kind":"span","name":"leaf","elapsed_us":10,"fields":{}}"#,
            "\n",
            r#"{"ts_us":50,"kind":"span","name":"leaf","elapsed_us":10,"fields":{}}"#,
            "\n",
            r#"{"ts_us":60,"kind":"span","name":"root","elapsed_us":60,"fields":{}}"#,
            "\n",
        );
        let a = analyze_trace(trace).unwrap_or_else(|e| panic!("{e}"));
        let folded = a.folded_stacks();
        assert!(folded.contains("root;leaf 20"), "folded output:\n{folded}");
        assert!(folded.contains("root 40"), "folded output:\n{folded}");
    }

    #[test]
    fn aggregates_rank_by_self_time() {
        let trace = concat!(
            r#"{"ts_us":90,"kind":"span","name":"inner","elapsed_us":80,"fields":{}}"#,
            "\n",
            r#"{"ts_us":100,"kind":"span","name":"outer","elapsed_us":100,"fields":{}}"#,
            "\n",
        );
        let a = analyze_trace(trace).unwrap_or_else(|e| panic!("{e}"));
        let aggs = a.aggregates();
        assert_eq!(aggs[0].name, "inner");
        assert_eq!(aggs[0].self_us, 80);
        assert_eq!(aggs[1].name, "outer");
        assert_eq!(aggs[1].self_us, 20);
        assert_eq!(aggs[1].total_us, 100);
    }

    #[test]
    fn report_renders_all_sections() {
        let trace = concat!(
            r#"{"ts_us":90,"kind":"span","name":"inner","elapsed_us":80,"fields":{}}"#,
            "\n",
            r#"{"ts_us":100,"kind":"span","name":"outer","elapsed_us":100,"fields":{}}"#,
            "\n",
            r#"{"ts_us":101,"kind":"event","name":"campaign.retry","fields":{}}"#,
            "\n",
        );
        let a = analyze_trace(trace).unwrap_or_else(|e| panic!("{e}"));
        let mut counters = BTreeMap::new();
        counters.insert("softmc.cmd".to_string(), 123_456u64);
        let report = render_report(&a, Some(&counters), 10);
        for needle in
            ["phases (top-level spans):", "hot spans", "span durations", "events:", "counter rates", "softmc.cmd"]
        {
            assert!(report.contains(needle), "missing '{needle}' in report:\n{report}");
        }
    }

    #[test]
    fn report_surfaces_dropped_records_prominently() {
        let trace = concat!(
            r#"{"ts_us":100,"kind":"span","name":"outer","elapsed_us":100,"fields":{}}"#,
            "\n",
        );
        let a = analyze_trace(trace).unwrap_or_else(|e| panic!("{e}"));
        let mut counters = BTreeMap::new();
        counters.insert(crate::names::OBS_DROPPED_RECORDS.to_string(), 7u64);
        let report = render_report(&a, Some(&counters), 10);
        assert!(report.contains("WARNING: 7 trace record(s) were DROPPED"), "{report}");
        let warn_at = report.find("WARNING").unwrap_or(usize::MAX);
        let rates_at = report.find("counter rates").unwrap_or(0);
        assert!(warn_at < rates_at, "warning must precede the fine print:\n{report}");
        // No warning when nothing was dropped (or no metrics given).
        counters.insert(crate::names::OBS_DROPPED_RECORDS.to_string(), 0);
        assert!(!render_report(&a, Some(&counters), 10).contains("WARNING"));
        assert!(!render_report(&a, None, 10).contains("WARNING"));
    }

    #[test]
    fn strict_analysis_fails_on_a_mid_record_cut_with_a_line_number() {
        // A crash cut the file mid-record: lenient analysis silently
        // drops the tail; strict analysis must refuse with the line.
        let full = concat!(
            r#"{"ts_us":100,"kind":"span","name":"child","elapsed_us":40,"fields":{}}"#,
            "\n",
            r#"{"ts_us":110,"kind":"span","name":"parent","elapsed_us":100,"fields":{}}"#,
            "\n",
        );
        let cut = &full[..full.len() - 30]; // mid-record on line 2
        let lenient = analyze_trace(cut).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(lenient.skipped_lines, 1, "lenient mode silently truncates");
        let err = analyze_trace_strict(cut).expect_err("strict must refuse");
        assert!(err.starts_with("line 2:"), "error must carry the line number: {err}");
        // An intact trace passes strict analysis unchanged.
        let strict = analyze_trace_strict(full).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(strict.span_count, 2);
        // A structurally-valid record missing the schema fields is
        // also an error, not a skip.
        let bad = "{\"ts_us\":5,\"kind\":\"span\"}\n";
        let err = analyze_trace_strict(bad).expect_err("incomplete record");
        assert!(err.contains("line 1"), "{err}");
    }

    fn fleet_fixture() -> Vec<(String, String)> {
        // Coordinator: fleet.run (span 0x1, root) containing one
        // dispatch rpc per lease (0x2 -> lease 7 committed, 0x3 ->
        // lease 8 lost). Worker segment for lease 7: worker.job 0xa
        // parented on 0x2, inner kernel span 0xb, plus an orphan span
        // 0xc whose parent 0xdead never shipped. Worker clock runs
        // 1000us behind (offset +1000).
        let coordinator = concat!(
            r#"{"ts_us":50,"kind":"span","name":"fleet.dispatch.rpc","elapsed_us":10,"tid":1,"trace_id":"00000000000000000000000000000abc","span_id":"0000000000000002","parent_id":"0000000000000001","fields":{"lease":7}}"#,
            "\n",
            r#"{"ts_us":70,"kind":"span","name":"fleet.dispatch.rpc","elapsed_us":10,"tid":1,"trace_id":"00000000000000000000000000000abc","span_id":"0000000000000003","parent_id":"0000000000000001","fields":{"lease":8}}"#,
            "\n",
            r#"{"ts_us":500,"kind":"span","name":"fleet.run","elapsed_us":490,"tid":1,"trace_id":"00000000000000000000000000000abc","span_id":"0000000000000001","parent_id":"0000000000000000","fields":{}}"#,
            "\n",
        );
        let segment7 = concat!(
            r#"{"ts_us":0,"kind":"meta","name":"fleet.trace.segment","tid":0,"fields":{"lease":7,"worker":"127.0.0.1:9","offset_us":1000,"shed":0,"orphan":false}}"#,
            "\n",
            r#"{"ts_us":-900,"kind":"event","name":"fleet.worker.job_start","tid":4,"fields":{}}"#,
            "\n",
            r#"{"ts_us":-800,"kind":"span","name":"fm.kernel","elapsed_us":50,"tid":4,"trace_id":"00000000000000000000000000000abc","span_id":"000000000000000b","parent_id":"000000000000000a","fields":{}}"#,
            "\n",
            r#"{"ts_us":-750,"kind":"span","name":"worker.job","elapsed_us":200,"tid":4,"trace_id":"00000000000000000000000000000abc","span_id":"000000000000000a","parent_id":"0000000000000002","fields":{"lease":7}}"#,
            "\n",
            r#"{"ts_us":-740,"kind":"span","name":"stray","elapsed_us":5,"tid":4,"trace_id":"00000000000000000000000000000abc","span_id":"000000000000000c","parent_id":"000000000000dead","fields":{}}"#,
            "\n",
        );
        // ts_us is unsigned in the schema; rewrite the negative demo
        // values (worker clocks start at 0 in reality).
        let segment7 = segment7.replace("-900", "100").replace("-800", "200").replace("-750", "250").replace("-740", "260");
        vec![
            ("coordinator.jsonl".to_string(), coordinator.to_string()),
            ("segment-7.jsonl".to_string(), segment7),
        ]
    }

    #[test]
    fn fleet_stitch_links_processes_normalizes_skew_and_flags_orphans() {
        let stitch = stitch_fleet(&fleet_fixture()).unwrap_or_else(|e| panic!("{e}"));
        // Exactly one true root: the coordinator's fleet.run.
        assert_eq!(stitch.roots.len(), 1);
        assert_eq!(stitch.roots[0].name, "fleet.run");
        // fleet.run -> dispatch(lease 7) -> worker.job -> fm.kernel.
        let dispatches = &stitch.roots[0].children;
        assert_eq!(dispatches.len(), 2);
        let job = dispatches
            .iter()
            .flat_map(|d| &d.children)
            .find(|c| c.name == "worker.job")
            .unwrap_or_else(|| panic!("worker.job must stitch under its dispatch"));
        assert_eq!(job.children.len(), 1);
        assert_eq!(job.children[0].name, "fm.kernel");
        // Skew: worker ts 250 + offset 1000 = 1250 on coordinator clock.
        assert_eq!(job.end_us, 1250);
        assert_eq!(stitch.job_spans, 1);
        // The stray span's parent never shipped: flagged, not dropped.
        assert_eq!(stitch.orphans.len(), 1);
        assert_eq!(stitch.orphans[0].name, "stray");
        // Lease 8 dispatched but shipped no segment (killed worker).
        assert_eq!(stitch.orphan_dispatches, 1);
        assert_eq!(stitch.orphan_segments, 0);
        assert_eq!(stitch.span_count, 6);
        assert_eq!(stitch.event_count, 1);
        let report = render_fleet_report(&stitch);
        for needle in
            ["fleet trace: 1 root(s)", "segment-7.jsonl", "skew=+1000us", "[orphan]", "worker.job"]
        {
            assert!(report.contains(needle), "missing '{needle}' in:\n{report}");
        }
        // The stitch folds into a standard Analysis for flamegraphs.
        let analysis = stitch.to_analysis();
        assert_eq!(analysis.span_count, 6);
        assert_eq!(analysis.roots.len(), 2, "fleet.run + flagged orphan");
        assert!(analysis.folded_stacks().contains("fleet.run;fleet.dispatch.rpc;worker.job;fm.kernel"));
    }

    #[test]
    fn fleet_stitch_is_strict_about_corrupt_segments() {
        let mut files = fleet_fixture();
        let cut = files[1].1.len() - 20;
        files[1].1.truncate(cut);
        let err = stitch_fleet(&files).expect_err("corrupt segment must refuse");
        assert!(err.starts_with("segment-7.jsonl: line"), "{err}");
        assert!(stitch_fleet(&[]).is_err());
    }

    #[test]
    fn parse_metrics_counters_reads_the_snapshot_schema() {
        let json = r#"{
  "counters": {
    "dram.flip": 42,
    "softmc.cmd": 1000
  },
  "gauges": {},
  "spans": {},
  "events_recorded": 0,
  "events_dropped": 0
}"#;
        let c = parse_metrics_counters(json).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(c.get("dram.flip"), Some(&42));
        assert_eq!(c.get("softmc.cmd"), Some(&1000));
        assert!(parse_metrics_counters("{}").is_err());
    }

    fn journal_fixture() -> String {
        use crate::stream::{journal_line, EventKind, JobEvent};
        let ev = |seq, lease_id, kind, module: &str, ts_us| JobEvent {
            seq,
            lease_id,
            kind,
            module: module.to_string(),
            ts_us,
            value: 0,
            detail: String::new(),
            worker: String::new(),
        };
        let mut text = String::new();
        // Worker 1: lease 7 runs A0, 100us start-to-commit.
        for e in [
            ev(1, 7, EventKind::Accepted, "A0", 10),
            ev(2, 7, EventKind::Started, "A0", 20),
            ev(3, 7, EventKind::Committed, "A0", 120),
        ] {
            text.push_str(&journal_line("127.0.0.1:7001", &e));
        }
        // Worker 2: lease 8 runs B1, 300us start-to-commit; lease 9
        // sheds (terminal on this worker, never started).
        for e in [
            ev(1, 8, EventKind::Started, "B1", 50),
            ev(2, 8, EventKind::Committed, "B1", 350),
            ev(3, 9, EventKind::Shed, "C2", 400),
        ] {
            text.push_str(&journal_line("127.0.0.1:7002", &e));
        }
        text.push_str("cut-mid-record{\"seq\":\n");
        text
    }

    #[test]
    fn journal_analysis_counts_and_latency_percentiles() {
        let a = analyze_journal(
            &journal_fixture(),
            &JournalFilter::default(),
            crate::stream::EventKind::Started,
            crate::stream::EventKind::Committed,
        );
        assert_eq!(a.total, 6);
        assert_eq!(a.skipped, 1);
        assert_eq!(a.leases, 3);
        assert_eq!(a.multi_terminal_leases, 0);
        assert_eq!(a.by_worker.get("127.0.0.1:7001"), Some(&3));
        assert_eq!(a.by_kind, vec![("accepted", 1), ("started", 2), ("committed", 2), ("shed", 1)]);
        assert_eq!(a.latency.samples, 2);
        assert_eq!(a.latency.p50_us, 100, "sorted samples [100, 300]");
        assert_eq!(a.latency.max_us, 300);
        let report = render_journal_report(&a);
        assert!(report.contains("6 event(s), 3 lease(s), 2 worker(s)"), "{report}");
        assert!(report.contains("(1 malformed line(s) skipped)"), "{report}");
        assert!(report.contains("latency started -> committed"), "{report}");
        assert!(report.contains("max 300us"), "{report}");
        assert!(!report.contains("WARNING"), "{report}");
    }

    #[test]
    fn journal_filters_narrow_tables_but_not_latency() {
        let text = journal_fixture();
        let by_worker = analyze_journal(
            &text,
            &JournalFilter {
                worker: Some("127.0.0.1:7002".to_string()),
                ..JournalFilter::default()
            },
            crate::stream::EventKind::Started,
            crate::stream::EventKind::Committed,
        );
        assert_eq!(by_worker.total, 3);
        assert_eq!(by_worker.latency.samples, 1, "worker filter scopes the pairing");
        assert_eq!(by_worker.latency.max_us, 300);

        let by_kind = analyze_journal(
            &text,
            &JournalFilter {
                kind: Some(crate::stream::EventKind::Committed),
                ..JournalFilter::default()
            },
            crate::stream::EventKind::Started,
            crate::stream::EventKind::Committed,
        );
        assert_eq!(by_kind.total, 2, "kind filter narrows the tables");
        assert_eq!(by_kind.latency.samples, 2, "kind filter must not break pairing");
    }

    #[test]
    fn journal_analysis_flags_double_terminals() {
        use crate::stream::{journal_line, EventKind, JobEvent};
        let ev = |seq, kind| JobEvent {
            seq,
            lease_id: 5,
            kind,
            module: "A0".to_string(),
            ts_us: seq,
            value: 0,
            detail: String::new(),
            worker: String::new(),
        };
        let mut text = String::new();
        text.push_str(&journal_line("w1", &ev(1, EventKind::Committed)));
        text.push_str(&journal_line("w1", &ev(2, EventKind::Committed)));
        let a = analyze_journal(
            &text,
            &JournalFilter::default(),
            EventKind::Started,
            EventKind::Committed,
        );
        assert_eq!(a.multi_terminal_leases, 1);
        assert!(render_journal_report(&a).contains("WARNING"), "exactly-once violation surfaces");
    }
}
