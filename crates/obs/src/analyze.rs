//! Offline trace analysis: span-tree reconstruction and reporting
//! over the JSONL traces the [`crate::Recorder`] exports.
//!
//! The recorder emits spans **at drop**, so a trace is ordered by span
//! *end* time and carries no parent pointers. Reconstruction exploits
//! the nesting discipline of scoped guards: within one thread, a span
//! that starts no earlier and ends no later than a later-emitted span
//! is its descendant. Records are replayed in file order keeping a
//! per-thread stack of completed subtrees; each new span adopts the
//! trailing subtrees its interval covers. Traces written before the
//! recorder stamped thread ids (`tid`) collapse onto thread 0, which
//! is exact for single-threaded phases and merely conservative for
//! parallel ones.
//!
//! Timestamps are truncated to microseconds, so a child's computed
//! start can precede its parent's by 1 µs; containment checks carry a
//! ±1 µs tolerance. Spans the tolerance cannot attach become roots
//! rather than being dropped.
//!
//! The analyzer is pure string-in/report-out (the JSON parser is
//! hand-rolled; `rh-stats` supplies the duration-distribution
//! rendering), so it works on a trace from any source that follows
//! the schema in DESIGN.md §7.

use rh_stats::Histogram1d;
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------------

/// A parsed JSON value (just enough for trace and metrics files).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (f64 is exact for the u64 ranges traces contain).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64 if it is a non-negative integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one JSON document from `src` (trailing whitespace allowed).
///
/// # Errors
///
/// A human-readable message with a byte offset on malformed input.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let mut p = Parser { b: src.as_bytes(), i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| format!("non-utf8 number at byte {start}"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| "non-utf8 \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.i += 4;
                            // Surrogates and other invalid scalars degrade to
                            // U+FFFD; trace strings never contain them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i - 1)),
                    }
                }
                _ => {
                    // Re-sync to char boundary: take the full UTF-8 sequence.
                    let len = utf8_len(c);
                    let end = (self.i - 1 + len).min(self.b.len());
                    let chunk = std::str::from_utf8(&self.b[self.i - 1..end])
                        .map_err(|_| format!("non-utf8 string at byte {}", self.i - 1))?;
                    out.push_str(chunk);
                    self.i = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let value = self.value()?;
            members.push((key, value));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

// ---------------------------------------------------------------------------
// Span-tree reconstruction
// ---------------------------------------------------------------------------

/// One reconstructed span with its adopted descendants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Emitting thread (0 for pre-`tid` traces).
    pub tid: u64,
    /// Computed start: end timestamp minus elapsed, microseconds.
    pub start_us: u64,
    /// End timestamp, microseconds since recorder creation.
    pub end_us: u64,
    /// Child spans, in start order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Wall time of this span.
    #[must_use]
    pub fn elapsed_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Wall time not covered by children (clock truncation can make
    /// children sum past the parent; self time saturates at 0).
    #[must_use]
    pub fn self_us(&self) -> u64 {
        let child_total: u64 = self.children.iter().map(SpanNode::elapsed_us).sum();
        self.elapsed_us().saturating_sub(child_total)
    }
}

/// Aggregate over every span (or every root) sharing a name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameAgg {
    /// Span name.
    pub name: String,
    /// Occurrences.
    pub count: u64,
    /// Summed wall time, microseconds.
    pub total_us: u64,
    /// Summed self time, microseconds.
    pub self_us: u64,
    /// Longest single occurrence, microseconds.
    pub max_us: u64,
}

/// Everything extracted from one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Reconstructed span forest, in start order.
    pub roots: Vec<SpanNode>,
    /// Total spans in the trace.
    pub span_count: u64,
    /// Total events in the trace.
    pub event_count: u64,
    /// Event occurrences by name.
    pub event_counts: BTreeMap<String, u64>,
    /// Trace extent: latest end minus earliest start, microseconds.
    pub wall_us: u64,
    /// Lines that failed to parse and were skipped.
    pub skipped_lines: u64,
}

/// Parses a JSONL trace and reconstructs its span forest. Malformed
/// lines are skipped (and counted), so a trace truncated by a crash
/// still analyzes.
///
/// # Errors
///
/// When the input contains no parseable trace records at all.
pub fn analyze_trace(jsonl: &str) -> Result<Analysis, String> {
    let mut stacks: BTreeMap<u64, Vec<SpanNode>> = BTreeMap::new();
    let mut analysis = Analysis {
        roots: Vec::new(),
        span_count: 0,
        event_count: 0,
        event_counts: BTreeMap::new(),
        wall_us: 0,
        skipped_lines: 0,
    };
    let mut first_start = u64::MAX;
    let mut last_end = 0u64;
    let mut parsed_any = false;

    for line in jsonl.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(rec) = parse_json(line) else {
            analysis.skipped_lines += 1;
            continue;
        };
        let (Some(ts_us), Some(kind), Some(name)) = (
            rec.get("ts_us").and_then(Json::as_u64),
            rec.get("kind").and_then(Json::as_str),
            rec.get("name").and_then(Json::as_str),
        ) else {
            analysis.skipped_lines += 1;
            continue;
        };
        parsed_any = true;
        let tid = rec.get("tid").and_then(Json::as_u64).unwrap_or(0);
        match kind {
            "span" => {
                let elapsed = rec.get("elapsed_us").and_then(Json::as_u64).unwrap_or(0);
                let start = ts_us.saturating_sub(elapsed);
                first_start = first_start.min(start);
                last_end = last_end.max(ts_us);
                analysis.span_count += 1;
                let stack = stacks.entry(tid).or_default();
                let mut children = Vec::new();
                while stack.last().is_some_and(|prev| {
                    prev.start_us + 1 >= start && prev.end_us <= ts_us + 1
                }) {
                    if let Some(prev) = stack.pop() {
                        children.push(prev);
                    }
                }
                children.reverse();
                stack.push(SpanNode { name: name.to_string(), tid, start_us: start, end_us: ts_us, children });
            }
            _ => {
                first_start = first_start.min(ts_us);
                last_end = last_end.max(ts_us);
                analysis.event_count += 1;
                *analysis.event_counts.entry(name.to_string()).or_insert(0) += 1;
            }
        }
    }
    if !parsed_any {
        return Err("no parseable trace records".to_string());
    }
    analysis.roots = stacks.into_values().flatten().collect();
    analysis.roots.sort_by_key(|r| (r.start_us, r.tid));
    analysis.wall_us = last_end.saturating_sub(if first_start == u64::MAX { 0 } else { first_start });
    Ok(analysis)
}

impl Analysis {
    /// Per-name aggregates over every span in the forest, sorted by
    /// self time descending (the "hot spans" ranking).
    #[must_use]
    pub fn aggregates(&self) -> Vec<NameAgg> {
        let mut by_name: BTreeMap<&str, NameAgg> = BTreeMap::new();
        fn walk<'a>(node: &'a SpanNode, by_name: &mut BTreeMap<&'a str, NameAgg>) {
            let agg = by_name.entry(&node.name).or_insert_with(|| NameAgg {
                name: node.name.clone(),
                count: 0,
                total_us: 0,
                self_us: 0,
                max_us: 0,
            });
            agg.count += 1;
            agg.total_us += node.elapsed_us();
            agg.self_us += node.self_us();
            agg.max_us = agg.max_us.max(node.elapsed_us());
            for c in &node.children {
                walk(c, by_name);
            }
        }
        for r in &self.roots {
            walk(r, &mut by_name);
        }
        let mut aggs: Vec<NameAgg> = by_name.into_values().collect();
        aggs.sort_by(|a, b| b.self_us.cmp(&a.self_us).then_with(|| a.name.cmp(&b.name)));
        aggs
    }

    /// Per-name aggregates over the roots only — the campaign's
    /// top-level phases — sorted by total time descending.
    #[must_use]
    pub fn phases(&self) -> Vec<NameAgg> {
        let mut by_name: BTreeMap<&str, NameAgg> = BTreeMap::new();
        for r in &self.roots {
            let agg = by_name.entry(&r.name).or_insert_with(|| NameAgg {
                name: r.name.clone(),
                count: 0,
                total_us: 0,
                self_us: 0,
                max_us: 0,
            });
            agg.count += 1;
            agg.total_us += r.elapsed_us();
            agg.self_us += r.self_us();
            agg.max_us = agg.max_us.max(r.elapsed_us());
        }
        let mut aggs: Vec<NameAgg> = by_name.into_values().collect();
        aggs.sort_by(|a, b| b.total_us.cmp(&a.total_us).then_with(|| a.name.cmp(&b.name)));
        aggs
    }

    /// Folded-stack output (`parent;child;grandchild self_us`), the
    /// input format of Brendan Gregg's `flamegraph.pl` and of most
    /// flamegraph viewers. Identical paths are merged.
    #[must_use]
    pub fn folded_stacks(&self) -> String {
        let mut merged: BTreeMap<String, u64> = BTreeMap::new();
        fn walk(node: &SpanNode, prefix: &str, merged: &mut BTreeMap<String, u64>) {
            let path = if prefix.is_empty() {
                node.name.clone()
            } else {
                format!("{prefix};{}", node.name)
            };
            *merged.entry(path.clone()).or_insert(0) += node.self_us();
            for c in &node.children {
                walk(c, &path, merged);
            }
        }
        for r in &self.roots {
            walk(r, "", &mut merged);
        }
        let mut out = String::new();
        for (path, us) in &merged {
            let _ = writeln!(out, "{path} {us}");
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Metrics sidecar + report rendering
// ---------------------------------------------------------------------------

/// Extracts the `counters` map from a metrics snapshot JSON (the file
/// `--metrics-out` writes).
///
/// # Errors
///
/// On malformed JSON or a missing/ill-typed `counters` member.
pub fn parse_metrics_counters(json: &str) -> Result<BTreeMap<String, u64>, String> {
    let doc = parse_json(json)?;
    let Some(Json::Obj(members)) = doc.get("counters") else {
        return Err("metrics file has no 'counters' object".to_string());
    };
    let mut out = BTreeMap::new();
    for (k, v) in members {
        if let Some(n) = v.as_u64() {
            out.insert(k.clone(), n);
        }
    }
    Ok(out)
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

/// Renders the human-readable analysis report: phase breakdown, top-k
/// hot spans (self vs total time), span-duration distribution, event
/// counts, and — when a metrics snapshot is supplied — counter rates
/// (hammers/sec, commands/sec, flips/sec, …) over the trace extent.
#[must_use]
pub fn render_report(
    analysis: &Analysis,
    counters: Option<&BTreeMap<String, u64>>,
    top: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} spans, {} events, {} roots, wall {}{}",
        analysis.span_count,
        analysis.event_count,
        analysis.roots.len(),
        fmt_us(analysis.wall_us),
        if analysis.skipped_lines > 0 {
            format!(" ({} malformed lines skipped)", analysis.skipped_lines)
        } else {
            String::new()
        }
    );

    // A lossy trace silently skews every number below it — say so
    // before anything else, not in the counter fine print.
    if let Some(&dropped) =
        counters.and_then(|c| c.get(crate::names::OBS_DROPPED_RECORDS))
    {
        if dropped > 0 {
            let _ = writeln!(
                out,
                "\nWARNING: {dropped} trace record(s) were DROPPED by the recorder \
                 (memory cap or trace-file write error);\n\
                 \x20        span/event counts and rates below undercount the run"
            );
        }
    }

    let phases = analysis.phases();
    if !phases.is_empty() {
        let _ = writeln!(out, "\nphases (top-level spans):");
        let _ = writeln!(out, "  {:<28} {:>8} {:>12} {:>12} {:>7}", "name", "count", "total", "max", "%wall");
        for p in &phases {
            let pct = if analysis.wall_us > 0 {
                100.0 * p.total_us as f64 / analysis.wall_us as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<28} {:>8} {:>12} {:>12} {:>6.1}%",
                p.name,
                p.count,
                fmt_us(p.total_us),
                fmt_us(p.max_us),
                pct
            );
        }
    }

    let aggs = analysis.aggregates();
    if !aggs.is_empty() {
        let _ = writeln!(out, "\nhot spans (by self time, top {top}):");
        let _ = writeln!(
            out,
            "  {:<28} {:>8} {:>12} {:>12} {:>12}",
            "name", "count", "self", "total", "max"
        );
        for a in aggs.iter().take(top) {
            let _ = writeln!(
                out,
                "  {:<28} {:>8} {:>12} {:>12} {:>12}",
                a.name,
                a.count,
                fmt_us(a.self_us),
                fmt_us(a.total_us),
                fmt_us(a.max_us)
            );
        }
    }

    // Span-duration distribution on a log10 axis; rh-stats owns the
    // binning so the analyzer and the figure pipeline share one
    // histogram implementation.
    let mut durations: Vec<f64> = Vec::new();
    fn collect(node: &SpanNode, out: &mut Vec<f64>) {
        out.push((node.elapsed_us() as f64 + 1.0).log10());
        for c in &node.children {
            collect(c, out);
        }
    }
    for r in &analysis.roots {
        collect(r, &mut durations);
    }
    if !durations.is_empty() {
        let bins = 10usize.min(durations.len().max(1));
        let h = Histogram1d::of(&durations, bins);
        let peak = h.counts().iter().copied().max().unwrap_or(1).max(1);
        let _ = writeln!(out, "\nspan durations (log10 bins):");
        let width = (h.hi() - h.lo()) / h.counts().len() as f64;
        for (i, &c) in h.counts().iter().enumerate() {
            let lo_us = 10f64.powf(h.lo() + width * i as f64) - 1.0;
            let hi_us = 10f64.powf(h.lo() + width * (i + 1) as f64) - 1.0;
            let bar = "#".repeat(((c as f64 / peak as f64) * 40.0).round() as usize);
            let _ = writeln!(
                out,
                "  [{:>10} .. {:>10}) {:>8} {}",
                fmt_us(lo_us.max(0.0) as u64),
                fmt_us(hi_us.max(0.0) as u64),
                c,
                bar
            );
        }
    }

    if !analysis.event_counts.is_empty() {
        let _ = writeln!(out, "\nevents:");
        let mut events: Vec<(&String, &u64)> = analysis.event_counts.iter().collect();
        events.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        for (name, count) in events.iter().take(top) {
            let _ = writeln!(out, "  {name:<40} {count:>10}");
        }
    }

    if let Some(counters) = counters {
        let secs = analysis.wall_us as f64 / 1e6;
        let _ = writeln!(out, "\ncounter rates over {:.2}s:", secs);
        for (name, total) in counters {
            let rate = if secs > 0.0 { *total as f64 / secs } else { 0.0 };
            let _ = writeln!(out, "  {name:<40} {total:>12} {rate:>14.0}/s");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_roundtrips_trace_shapes() {
        let v = parse_json(
            r#"{"ts_us":12,"kind":"event","name":"a.b","tid":3,"fields":{"s":"q\"x","n":-2.5,"b":true,"z":null,"arr":[1,2]}}"#,
        )
        .unwrap_or_else(|e| panic!("parse failed: {e}"));
        assert_eq!(v.get("ts_us").and_then(Json::as_u64), Some(12));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("event"));
        let fields = v.get("fields").unwrap_or(&Json::Null);
        assert_eq!(fields.get("s").and_then(Json::as_str), Some("q\"x"));
        assert_eq!(fields.get("n"), Some(&Json::Num(-2.5)));
        assert_eq!(fields.get("b"), Some(&Json::Bool(true)));
        assert_eq!(fields.get("z"), Some(&Json::Null));
        assert_eq!(fields.get("arr"), Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])));
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} x").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn reconstructs_nesting_from_end_ordered_records() {
        // child: [60, 100); parent: [10, 110) — child emitted first.
        let trace = concat!(
            r#"{"ts_us":100,"kind":"span","name":"child","elapsed_us":40,"fields":{}}"#,
            "\n",
            r#"{"ts_us":110,"kind":"span","name":"parent","elapsed_us":100,"fields":{}}"#,
            "\n",
        );
        let a = analyze_trace(trace).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(a.roots.len(), 1);
        assert_eq!(a.roots[0].name, "parent");
        assert_eq!(a.roots[0].children.len(), 1);
        assert_eq!(a.roots[0].children[0].name, "child");
        assert_eq!(a.roots[0].self_us(), 60);
        assert_eq!(a.roots[0].children[0].self_us(), 40);
        assert_eq!(a.span_count, 2);
        assert_eq!(a.wall_us, 100);
    }

    #[test]
    fn sibling_spans_stay_siblings() {
        // Two siblings [0,40) and [50,90) under parent [0,100).
        let trace = concat!(
            r#"{"ts_us":40,"kind":"span","name":"s1","elapsed_us":40,"fields":{}}"#,
            "\n",
            r#"{"ts_us":90,"kind":"span","name":"s2","elapsed_us":40,"fields":{}}"#,
            "\n",
            r#"{"ts_us":100,"kind":"span","name":"parent","elapsed_us":100,"fields":{}}"#,
            "\n",
        );
        let a = analyze_trace(trace).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(a.roots.len(), 1);
        let kids: Vec<&str> = a.roots[0].children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(kids, vec!["s1", "s2"]);
        assert_eq!(a.roots[0].self_us(), 20);
    }

    #[test]
    fn threads_partition_the_forest_and_missing_tid_defaults_to_zero() {
        // Identical intervals on two threads must NOT nest; the first
        // record has no tid field at all (a pre-tid trace).
        let trace = concat!(
            r#"{"ts_us":50,"kind":"span","name":"a","elapsed_us":50,"fields":{}}"#,
            "\n",
            r#"{"ts_us":60,"kind":"span","name":"b","elapsed_us":60,"tid":7,"fields":{}}"#,
            "\n",
        );
        let a = analyze_trace(trace).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(a.roots.len(), 2);
        assert_eq!(a.roots.iter().map(|r| r.tid).collect::<Vec<_>>(), vec![0, 7]);
    }

    #[test]
    fn events_are_counted_and_malformed_lines_skipped() {
        let trace = concat!(
            r#"{"ts_us":5,"kind":"event","name":"campaign.retry","fields":{}}"#,
            "\n",
            "this is not json\n",
            r#"{"ts_us":9,"kind":"event","name":"campaign.retry","fields":{}}"#,
            "\n",
            r#"{"ts_us":20,"kind":"span","name":"root","elapsed_us":18,"fields":{}}"#,
            "\n",
        );
        let a = analyze_trace(trace).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(a.event_count, 2);
        assert_eq!(a.event_counts.get("campaign.retry"), Some(&2));
        assert_eq!(a.skipped_lines, 1);
        assert_eq!(a.span_count, 1);
    }

    #[test]
    fn empty_trace_is_an_error() {
        assert!(analyze_trace("").is_err());
        assert!(analyze_trace("not json\n").is_err());
    }

    #[test]
    fn folded_stacks_merge_identical_paths() {
        let trace = concat!(
            r#"{"ts_us":30,"kind":"span","name":"leaf","elapsed_us":10,"fields":{}}"#,
            "\n",
            r#"{"ts_us":50,"kind":"span","name":"leaf","elapsed_us":10,"fields":{}}"#,
            "\n",
            r#"{"ts_us":60,"kind":"span","name":"root","elapsed_us":60,"fields":{}}"#,
            "\n",
        );
        let a = analyze_trace(trace).unwrap_or_else(|e| panic!("{e}"));
        let folded = a.folded_stacks();
        assert!(folded.contains("root;leaf 20"), "folded output:\n{folded}");
        assert!(folded.contains("root 40"), "folded output:\n{folded}");
    }

    #[test]
    fn aggregates_rank_by_self_time() {
        let trace = concat!(
            r#"{"ts_us":90,"kind":"span","name":"inner","elapsed_us":80,"fields":{}}"#,
            "\n",
            r#"{"ts_us":100,"kind":"span","name":"outer","elapsed_us":100,"fields":{}}"#,
            "\n",
        );
        let a = analyze_trace(trace).unwrap_or_else(|e| panic!("{e}"));
        let aggs = a.aggregates();
        assert_eq!(aggs[0].name, "inner");
        assert_eq!(aggs[0].self_us, 80);
        assert_eq!(aggs[1].name, "outer");
        assert_eq!(aggs[1].self_us, 20);
        assert_eq!(aggs[1].total_us, 100);
    }

    #[test]
    fn report_renders_all_sections() {
        let trace = concat!(
            r#"{"ts_us":90,"kind":"span","name":"inner","elapsed_us":80,"fields":{}}"#,
            "\n",
            r#"{"ts_us":100,"kind":"span","name":"outer","elapsed_us":100,"fields":{}}"#,
            "\n",
            r#"{"ts_us":101,"kind":"event","name":"campaign.retry","fields":{}}"#,
            "\n",
        );
        let a = analyze_trace(trace).unwrap_or_else(|e| panic!("{e}"));
        let mut counters = BTreeMap::new();
        counters.insert("softmc.cmd".to_string(), 123_456u64);
        let report = render_report(&a, Some(&counters), 10);
        for needle in
            ["phases (top-level spans):", "hot spans", "span durations", "events:", "counter rates", "softmc.cmd"]
        {
            assert!(report.contains(needle), "missing '{needle}' in report:\n{report}");
        }
    }

    #[test]
    fn report_surfaces_dropped_records_prominently() {
        let trace = concat!(
            r#"{"ts_us":100,"kind":"span","name":"outer","elapsed_us":100,"fields":{}}"#,
            "\n",
        );
        let a = analyze_trace(trace).unwrap_or_else(|e| panic!("{e}"));
        let mut counters = BTreeMap::new();
        counters.insert(crate::names::OBS_DROPPED_RECORDS.to_string(), 7u64);
        let report = render_report(&a, Some(&counters), 10);
        assert!(report.contains("WARNING: 7 trace record(s) were DROPPED"), "{report}");
        let warn_at = report.find("WARNING").unwrap_or(usize::MAX);
        let rates_at = report.find("counter rates").unwrap_or(0);
        assert!(warn_at < rates_at, "warning must precede the fine print:\n{report}");
        // No warning when nothing was dropped (or no metrics given).
        counters.insert(crate::names::OBS_DROPPED_RECORDS.to_string(), 0);
        assert!(!render_report(&a, Some(&counters), 10).contains("WARNING"));
        assert!(!render_report(&a, None, 10).contains("WARNING"));
    }

    #[test]
    fn parse_metrics_counters_reads_the_snapshot_schema() {
        let json = r#"{
  "counters": {
    "dram.flip": 42,
    "softmc.cmd": 1000
  },
  "gauges": {},
  "spans": {},
  "events_recorded": 0,
  "events_dropped": 0
}"#;
        let c = parse_metrics_counters(json).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(c.get("dram.flip"), Some(&42));
        assert_eq!(c.get("softmc.cmd"), Some(&1000));
        assert!(parse_metrics_counters("{}").is_err());
    }
}
