//! Distributed trace identity: process-unique trace/span IDs, the
//! thread-local current-span context, and the W3C-traceparent-style
//! wire format that carries a context across the fleet's HTTP pair.
//!
//! # Model
//!
//! Every *enabled* [`crate::span`] mints a process-unique 64-bit span
//! ID and joins the thread's current trace (minting a fresh 128-bit
//! trace ID when the thread has none). The guard saves the previous
//! `(trace, span)` pair and restores it on drop, so nesting on one
//! thread builds parent links without any heap stack. A thread that
//! executes work on behalf of a *remote* span (a worker job thread)
//! calls [`set_remote_parent`] first; its spans then join the remote
//! trace with the remote span as parent — this is what stitches
//! coordinator dispatch → worker job → kernel spans into one causal
//! tree across processes.
//!
//! When observability is disabled, none of this runs: `span()` stays
//! at one relaxed atomic load, reads no clock, and mints no IDs (the
//! `obs_disabled_span` micro-bench gates this at < 50 ns/op).
//!
//! # Wire format
//!
//! [`format_traceparent`]/[`parse_traceparent`] implement the W3C
//! `traceparent` shape: `00-{trace:032x}-{span:016x}-01` — version
//! `00`, lowercase hex, all-zero IDs invalid. Parsing is strict and
//! total: any malformed input yields `None`, never a panic (fuzzed in
//! `tests/traceparent_fuzz.rs` alongside the faultnet corruption
//! classes).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The identity of one span in a distributed trace. `parent_id == 0`
/// marks a root span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanIds {
    /// 128-bit trace the span belongs to (0 = untraced).
    pub trace_id: u128,
    /// Process-unique 64-bit span ID.
    pub span_id: u64,
    /// The parent span's ID within the same trace (0 = root).
    pub parent_id: u64,
}

impl SpanIds {
    /// The all-zero (untraced) identity.
    #[must_use]
    pub const fn none() -> Self {
        Self { trace_id: 0, span_id: 0, parent_id: 0 }
    }

    /// Whether this span carries a live trace identity.
    #[must_use]
    pub fn is_traced(&self) -> bool {
        self.trace_id != 0
    }
}

/// A propagated `(trace, span)` pair — what a traceparent header
/// carries, and what child spans adopt as their parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace being continued.
    pub trace_id: u128,
    /// The span that is the remote parent.
    pub span_id: u64,
}

thread_local! {
    /// The thread's current `(trace_id, span_id)`; `(0, 0)` = none.
    static CURRENT: Cell<(u128, u64)> = const { Cell::new((0, 0)) };
}

/// Monotonic per-process draw for ID minting.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// SplitMix64 finalizer (same mixer the fault planners use).
fn mix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Lazily drawn per-process entropy: `RandomState` is seeded fresh
/// per process, so two workers spawned in the same nanosecond still
/// mint disjoint IDs. No new dependencies, no syscall per span.
fn process_entropy() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        use std::hash::{BuildHasher as _, Hasher as _};
        let mut h = std::collections::hash_map::RandomState::new().build_hasher();
        h.write_u32(std::process::id());
        h.finish() | 1
    })
}

/// Mints a nonzero process-unique 64-bit span ID.
#[must_use]
pub fn mint_span_id() -> u64 {
    let draw = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    mix64(process_entropy() ^ draw).max(1)
}

/// Mints a nonzero 128-bit trace ID.
#[must_use]
pub fn mint_trace_id() -> u128 {
    (u128::from(mint_span_id()) << 64) | u128::from(mint_span_id())
}

/// The thread's current trace context, if any — what the HTTP client
/// injects as a `Traceparent` header on outgoing requests.
#[must_use]
pub fn current_context() -> Option<TraceContext> {
    let (trace_id, span_id) = CURRENT.try_with(Cell::get).unwrap_or((0, 0));
    (trace_id != 0).then_some(TraceContext { trace_id, span_id })
}

/// Adopts `ctx` as this thread's current context, so subsequent spans
/// join the remote trace with `ctx.span_id` as their parent. Intended
/// for threads that execute one remote job and then exit (the worker
/// spawns a fresh thread per job); a long-lived thread should restore
/// the previous context itself via a second call.
pub fn set_remote_parent(ctx: TraceContext) {
    let _ = CURRENT.try_with(|c| c.set((ctx.trace_id, ctx.span_id)));
}

/// Opens a span scope: mints IDs, joins (or starts) the thread's
/// trace, and swaps the current context. Returns the new span's IDs
/// and the previous context for [`exit_span`]. Only called on the
/// enabled path.
pub(crate) fn enter_span() -> (SpanIds, (u128, u64)) {
    let prev = CURRENT.try_with(Cell::get).unwrap_or((0, 0));
    let trace_id = if prev.0 != 0 { prev.0 } else { mint_trace_id() };
    let span_id = mint_span_id();
    let ids = SpanIds { trace_id, span_id, parent_id: prev.1 };
    let _ = CURRENT.try_with(|c| c.set((trace_id, span_id)));
    (ids, prev)
}

/// Restores the context saved by [`enter_span`].
pub(crate) fn exit_span(prev: (u128, u64)) {
    let _ = CURRENT.try_with(|c| c.set(prev));
}

/// Renders `ctx` in the W3C traceparent shape:
/// `00-{trace:032x}-{span:016x}-01`.
#[must_use]
pub fn format_traceparent(ctx: TraceContext) -> String {
    format!("00-{:032x}-{:016x}-01", ctx.trace_id, ctx.span_id)
}

/// Strict hex decode: exactly `digits` lowercase ASCII hex characters.
fn parse_hex_strict(s: &str, digits: usize) -> Option<u128> {
    if s.len() != digits {
        return None;
    }
    let mut value: u128 = 0;
    for b in s.bytes() {
        let nibble = match b {
            b'0'..=b'9' => b - b'0',
            b'a'..=b'f' => b - b'a' + 10,
            // Uppercase is invalid per the W3C grammar; rejecting it
            // keeps parse(format(x)) the only round-trip.
            _ => return None,
        };
        value = (value << 4) | u128::from(nibble);
    }
    Some(value)
}

/// Parses a traceparent header value. Strict and total: version must
/// be `00`, IDs must be exact-length lowercase hex and nonzero, the
/// flags field must be two hex digits. Anything else — truncation,
/// corruption, uppercase, embedded NULs — yields `None`.
#[must_use]
pub fn parse_traceparent(value: &str) -> Option<TraceContext> {
    let value = value.trim();
    // "00-" + 32 + "-" + 16 + "-" + 2 = 55 bytes exactly.
    if value.len() != 55 {
        return None;
    }
    let mut parts = value.split('-');
    let (version, trace, span, flags) =
        (parts.next()?, parts.next()?, parts.next()?, parts.next()?);
    if parts.next().is_some() || version != "00" {
        return None;
    }
    let trace_id = parse_hex_strict(trace, 32)?;
    let span_id = parse_hex_strict(span, 16)? as u64;
    parse_hex_strict(flags, 2)?;
    if trace_id == 0 || span_id == 0 {
        return None;
    }
    Some(TraceContext { trace_id, span_id })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_nonzero_and_distinct() {
        let a = mint_span_id();
        let b = mint_span_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        let t = mint_trace_id();
        assert_ne!(t, 0);
        assert!(t >> 64 != 0, "high half must carry entropy");
    }

    #[test]
    fn traceparent_round_trips() {
        let ctx = TraceContext { trace_id: mint_trace_id(), span_id: mint_span_id() };
        let wire = format_traceparent(ctx);
        assert_eq!(wire.len(), 55);
        assert_eq!(parse_traceparent(&wire), Some(ctx));
        // Surrounding whitespace (header trimming) is tolerated.
        assert_eq!(parse_traceparent(&format!("  {wire} ")), Some(ctx));
    }

    #[test]
    fn malformed_traceparents_are_rejected() {
        let ctx = TraceContext { trace_id: 0xabc, span_id: 0xdef };
        let wire = format_traceparent(ctx);
        for bad in [
            "",
            "00",
            &wire[..54],                          // truncated
            &format!("{wire}0"),                  // too long
            &wire.to_uppercase(),                 // uppercase hex
            &wire.replace("00-", "01-"),          // wrong version
            &wire.replacen('a', "g", 1),          // non-hex digit
            "00-00000000000000000000000000000000-0000000000000def-01", // zero trace
            "00-00000000000000000000000000000abc-0000000000000000-01", // zero span
        ] {
            assert_eq!(parse_traceparent(bad), None, "accepted {bad:?}");
        }
    }

    #[test]
    fn remote_parent_is_adopted_by_the_thread() {
        let ctx = TraceContext { trace_id: 7, span_id: 9 };
        std::thread::spawn(move || {
            assert_eq!(current_context(), None);
            set_remote_parent(ctx);
            assert_eq!(current_context(), Some(ctx));
            let (ids, prev) = enter_span();
            assert_eq!(ids.trace_id, 7);
            assert_eq!(ids.parent_id, 9);
            assert_ne!(ids.span_id, 9);
            exit_span(prev);
            assert_eq!(current_context(), Some(ctx));
        })
        .join()
        .unwrap_or_else(|_| panic!("trace thread panicked"));
    }
}
