//! The canonical registry of metric, span, and histogram names.
//!
//! Every instrumentation point in the workspace refers to these
//! constants instead of ad-hoc `&'static str` literals: a typo'd name
//! can no longer silently fork a time series, because the only way to
//! emit a record is through a constant that [`all`] enumerates and the
//! `names_are_unique` / `names_follow_convention` tests police.
//!
//! # Naming convention
//!
//! `crate.noun[.qualifier]` — lowercase ASCII, `.`-separated segments
//! of `[a-z0-9_]`, no leading/trailing/empty segments. Histograms of
//! durations carry a unit suffix (`.ns`), so a reader never has to
//! guess what a p99 of `1024` means.

/// Every opcode issued by the SoftMC controller.
pub const SOFTMC_CMD: &str = "softmc.cmd";
/// ACT commands issued.
pub const SOFTMC_CMD_ACT: &str = "softmc.cmd.act";
/// PRE commands issued.
pub const SOFTMC_CMD_PRE: &str = "softmc.cmd.pre";
/// PREALL commands issued.
pub const SOFTMC_CMD_PRE_ALL: &str = "softmc.cmd.pre_all";
/// RD commands issued.
pub const SOFTMC_CMD_RD: &str = "softmc.cmd.rd";
/// WR commands issued.
pub const SOFTMC_CMD_WR: &str = "softmc.cmd.wr";
/// REF commands issued.
pub const SOFTMC_CMD_REF: &str = "softmc.cmd.ref";
/// NOP commands issued.
pub const SOFTMC_CMD_NOP: &str = "softmc.cmd.nop";
/// Bulk hammer fast-path invocations.
pub const SOFTMC_HAMMER_BULK: &str = "softmc.hammer.bulk";
/// Operations aborted by a fired cancel token.
pub const SOFTMC_CANCELLED: &str = "softmc.cancelled";
/// Injected infrastructure faults that fired.
pub const SOFTMC_FAULT_INJECTED: &str = "softmc.fault.injected";
/// Injected hangs that wedged the host link.
pub const SOFTMC_FAULT_HANG: &str = "softmc.fault.hang";
/// Event: one injected fault (stage, op, error).
pub const SOFTMC_FAULT_EVENT: &str = "softmc.fault";
/// Event: the host link wedged (op, after_ops).
pub const SOFTMC_HANG_EVENT: &str = "softmc.hang";

/// Histogram: wall latency of issuing one ACT (ns).
pub const SOFTMC_ISSUE_ACT_NS: &str = "softmc.issue.act.ns";
/// Histogram: wall latency of issuing one PRE (ns).
pub const SOFTMC_ISSUE_PRE_NS: &str = "softmc.issue.pre.ns";
/// Histogram: wall latency of issuing one PREALL (ns).
pub const SOFTMC_ISSUE_PRE_ALL_NS: &str = "softmc.issue.pre_all.ns";
/// Histogram: wall latency of issuing one RD (ns).
pub const SOFTMC_ISSUE_RD_NS: &str = "softmc.issue.rd.ns";
/// Histogram: wall latency of issuing one WR (ns).
pub const SOFTMC_ISSUE_WR_NS: &str = "softmc.issue.wr.ns";
/// Histogram: wall latency of issuing one REF (ns).
pub const SOFTMC_ISSUE_REF_NS: &str = "softmc.issue.ref.ns";
/// Histogram: wall latency of issuing one NOP (ns).
pub const SOFTMC_ISSUE_NOP_NS: &str = "softmc.issue.nop.ns";

/// Bit flips materialized on activation.
pub const DRAM_FLIP: &str = "dram.flip";
/// Hammer episodes delivered to the fault model.
pub const DRAM_HAMMER_EPISODES: &str = "dram.hammer.episodes";
/// Dangling episodes flushed after a program's final PRE.
pub const DRAM_HAMMER_FLUSHED: &str = "dram.hammer.flushed";
/// Full-row writes through the direct interface.
pub const DRAM_ROW_WRITE: &str = "dram.row.write";
/// Full-row reads through the direct interface.
pub const DRAM_ROW_READ: &str = "dram.row.read";
/// Gauge: rows currently materialized in module storage.
pub const DRAM_ROWS_STORED: &str = "dram.rows_stored";
/// Timing-constraint violations (counter and event share the name).
pub const DRAM_TIMING_VIOLATION: &str = "dram.timing_violation";
/// Histogram: wall latency of one bulk hammer burst (ns).
pub const DRAM_HAMMER_NS: &str = "dram.hammer.ns";
/// Histogram: wall latency of one direct row write (ns).
pub const DRAM_ROW_WRITE_NS: &str = "dram.row.write.ns";
/// Histogram: wall latency of one direct row read (ns).
pub const DRAM_ROW_READ_NS: &str = "dram.row.read.ns";

/// Vulnerable-cell populations derived (global-cache misses).
pub const FAULTMODEL_ROW_DERIVE: &str = "faultmodel.row.derive";
/// Row derivations served by the process-global cell cache.
pub const FAULTMODEL_CELLS_GLOBAL_HIT: &str = "faultmodel.cells.global_hit";
/// Columnar temperature surfaces built (memo misses).
pub const FAULTMODEL_SURFACE_BUILD: &str = "faultmodel.surface.build";
/// Activations decided by the O(1) below-every-threshold early-out.
pub const FAULTMODEL_EVAL_EARLY_OUT: &str = "faultmodel.eval.early_out";
/// Per-model derivation-cache entries evicted (LRU, not wiped).
pub const FAULTMODEL_CACHE_EVICT: &str = "faultmodel.cache.evict";

/// BER measurements taken.
pub const CORE_BER_MEASUREMENTS: &str = "core.ber_measurements";
/// Span: one HCfirst binary search.
pub const CORE_HC_FIRST: &str = "core.hc_first";
/// Histogram: wall latency of one HCfirst probe iteration (ns).
pub const CORE_HC_FIRST_PROBE_NS: &str = "core.hc_first.probe.ns";

/// Modules that succeeded on their first attempt.
pub const CAMPAIGN_SUCCEEDED: &str = "campaign.succeeded";
/// Modules that recovered after retries (the counter and the
/// per-module event share this name).
pub const CAMPAIGN_RECOVERED: &str = "campaign.recovered";
/// Modules quarantined after exhausting attempts.
pub const CAMPAIGN_QUARANTINED: &str = "campaign.quarantined";
/// Retry attempts across all modules.
pub const CAMPAIGN_RETRIES: &str = "campaign.retries";
/// Modules timed out by the watchdog.
pub const CAMPAIGN_TIMEOUT: &str = "campaign.timeout";
/// Modules cancelled (queued or in flight).
pub const CAMPAIGN_CANCELLED: &str = "campaign.cancelled";
/// Event: one retry (module, attempt, backoff_ms, error).
pub const CAMPAIGN_RETRY_EVENT: &str = "campaign.retry";
/// Event: one quarantine (module, attempts, transient, error).
pub const CAMPAIGN_QUARANTINE_EVENT: &str = "campaign.quarantine";
/// Event: a checkpoint was loaded (entries).
pub const CAMPAIGN_CHECKPOINT_LOADED: &str = "campaign.checkpoint.loaded";
/// Event: a checkpoint was saved (entries, ok).
pub const CAMPAIGN_CHECKPOINT_SAVED: &str = "campaign.checkpoint.saved";
/// Event: a stale checkpoint temp file was removed.
pub const CAMPAIGN_CHECKPOINT_STALE_TMP: &str = "campaign.checkpoint.stale_tmp_removed";
/// Event: a module was skipped because the checkpoint already has it.
pub const CAMPAIGN_RESUME_SKIP: &str = "campaign.resume_skip";
/// Span: one module's full retry loop.
pub const CAMPAIGN_MODULE: &str = "campaign.module";
/// Histogram: wall time of one module's full retry loop (ns).
pub const CAMPAIGN_MODULE_NS: &str = "campaign.module.ns";
/// Span: one attempt (build + run) inside a module's retry loop; nests
/// under [`CAMPAIGN_MODULE`] in the reconstructed trace tree.
pub const CAMPAIGN_ATTEMPT: &str = "campaign.attempt";

/// Event: periodic campaign progress heartbeat (done, total, running,
/// eta_ms).
pub const CAMPAIGN_HEARTBEAT: &str = "campaign.heartbeat";
/// Gauge: modules in this campaign (fixed once tasks are admitted).
pub const CAMPAIGN_PROGRESS_TOTAL: &str = "campaign.progress.total";
/// Gauge: modules with a terminal status (any outcome counts as done).
pub const CAMPAIGN_PROGRESS_DONE: &str = "campaign.progress.done";
/// Gauge: modules currently inside a worker.
pub const CAMPAIGN_PROGRESS_RUNNING: &str = "campaign.progress.running";
/// Gauge: throughput-based estimate of remaining campaign wall time.
pub const CAMPAIGN_ETA_MS: &str = "campaign.eta_ms";

/// Gauge: tasks still queued in the supervised pool.
pub const EXECUTOR_QUEUE_DEPTH: &str = "executor.queue_depth";
/// Span: the watchdog thread's whole patrol.
pub const EXECUTOR_WATCHDOG: &str = "executor.watchdog";
/// Histogram: time a task waited in the queue before starting (ns).
pub const EXECUTOR_QUEUE_WAIT_NS: &str = "executor.queue_wait.ns";

/// Rows refreshed by a defense.
pub const DEFENSE_REFRESH: &str = "defense.refresh";
/// Defense refreshes that landed on the true victim.
pub const DEFENSE_VICTIM_REFRESH: &str = "defense.victim_refresh";
/// Throttle actions taken by a defense.
pub const DEFENSE_THROTTLE: &str = "defense.throttle";
/// Cumulative throttle delay in picoseconds.
pub const DEFENSE_THROTTLE_PS: &str = "defense.throttle_ps";

/// Span: one reproduction target.
pub const BENCH_TARGET: &str = "bench.target";
/// Span: one perf-bench workload repetition.
pub const BENCH_WORKLOAD: &str = "bench.workload";

/// Jobs the fleet coordinator dispatched (first grant or re-grant).
pub const FLEET_DISPATCH: &str = "fleet.dispatch";
/// Jobs re-dispatched after a lease expired.
pub const FLEET_REDISPATCH: &str = "fleet.redispatch";
/// Module results committed (exactly one per module, ever).
pub const FLEET_COMMIT: &str = "fleet.commit";
/// Late or repeated results rejected by the commit rule.
pub const FLEET_DUPLICATE: &str = "fleet.duplicate";
/// Leases that expired (deadline passed without commit).
pub const FLEET_LEASE_EXPIRED: &str = "fleet.lease.expired";
/// Heartbeats that failed (connection refused, timeout, bad reply).
pub const FLEET_HEARTBEAT_MISSED: &str = "fleet.heartbeat.missed";
/// Workers currently marked suspect (gauge).
pub const FLEET_WORKER_SUSPECT: &str = "fleet.worker.suspect";
/// Modules the fleet quarantined after exhausting attempts.
pub const FLEET_QUARANTINED: &str = "fleet.quarantined";
/// Event: one lease grant (module, worker, lease, generation).
pub const FLEET_GRANT_EVENT: &str = "fleet.grant";
/// Event: one lease expiry (module, lease, worker).
pub const FLEET_EXPIRE_EVENT: &str = "fleet.expire";
/// Event: the fleet checkpoint was loaded (committed entries).
pub const FLEET_CHECKPOINT_LOADED: &str = "fleet.checkpoint.loaded";
/// Event: the fleet checkpoint was saved (committed entries).
pub const FLEET_CHECKPOINT_SAVED: &str = "fleet.checkpoint.saved";

/// Jobs a worker accepted onto a slot.
pub const WORKER_JOBS_ACCEPTED: &str = "worker.jobs.accepted";
/// Jobs a worker refused for lack of slots (503 to the coordinator).
pub const WORKER_JOBS_REJECTED: &str = "worker.jobs.rejected";
/// Jobs a worker ran to successful completion.
pub const WORKER_JOBS_COMPLETED: &str = "worker.jobs.completed";
/// Jobs that failed on the worker (the error travels back).
pub const WORKER_JOBS_FAILED: &str = "worker.jobs.failed";
/// Jobs cancelled on the worker via `POST /cancel`.
pub const WORKER_JOBS_CANCELLED: &str = "worker.jobs.cancelled";

/// Circuit-breaker trips: a worker's breaker moved Closed/HalfOpen →
/// Open after consecutive transport failures.
pub const FLEET_BREAKER_TRIP: &str = "fleet.breaker.trip";
/// Breaker probes: an Open breaker cooled down and admitted one
/// half-open trial request.
pub const FLEET_BREAKER_HALF_OPEN: &str = "fleet.breaker.half_open";
/// Breaker recoveries: a half-open probe succeeded and the breaker
/// re-closed.
pub const FLEET_BREAKER_CLOSE: &str = "fleet.breaker.close";
/// Workers evicted from dispatch after exhausting breaker trips.
pub const FLEET_BREAKER_EVICTED: &str = "fleet.breaker.evicted";
/// Gauge: workers whose breaker is currently not Closed (open,
/// half-open, or evicted) — nonzero means the fleet is degraded-risk.
pub const FLEET_BREAKER_OPEN: &str = "fleet.breaker.open";
/// Event: one breaker transition (worker, from, to, failures).
pub const FLEET_BREAKER_EVENT: &str = "fleet.breaker";
/// Gauge: 1 when the coordinator finished with a degraded (partial)
/// report because workers were permanently lost, else 0.
pub const FLEET_DEGRADED: &str = "fleet.degraded";
/// Jobs a worker shed with 429 because the admission queue was full.
pub const WORKER_ADMISSION_SHED: &str = "worker.admission.shed";
/// Jobs accepted into the worker's bounded admission queue (deferred,
/// not yet on a slot).
pub const WORKER_ADMISSION_QUEUED: &str = "worker.admission.queued";

/// Network faults injected by the armed [`crate::faultnet`] plan.
pub const NETFAULT_INJECTED: &str = "obs.netfault.injected";
/// Event: one injected network fault (kind, op).
pub const NETFAULT_EVENT: &str = "obs.netfault";

/// Span: one whole coordinator fleet run (the trace root).
pub const FLEET_RUN_SPAN: &str = "fleet.run";
/// Span: one coordinator→worker dispatch RPC (carries the traceparent).
pub const FLEET_DISPATCH_RPC: &str = "fleet.dispatch.rpc";
/// Span: one job executing on a worker slot thread.
pub const WORKER_JOB_SPAN: &str = "worker.job";
/// Span: one fault-model kernel sweep (a bounded hammer+evaluate
/// batch inside a characterization workload, e.g. one temperature
/// grid step), so worker job spans carry kernel children across the
/// process boundary without flooding the per-job segment budget.
pub const FAULTMODEL_KERNEL_SPAN: &str = "faultmodel.kernel";
/// Meta record heading each per-job trace segment file.
pub const FLEET_TRACE_SEGMENT: &str = "fleet.trace.segment";
/// Trace records a worker shed from a job segment to stay in budget.
pub const OBS_TRACE_SHED: &str = "obs.trace.shed";

/// Per-job lifecycle events appended to a worker's event ring.
pub const WORKER_EVENTS_EMITTED: &str = "worker.events.emitted";
/// Lifecycle events evicted from a worker's ring by overflow.
pub const WORKER_EVENTS_DROPPED: &str = "worker.events.dropped";
/// `GET /events` polls a worker answered.
pub const WORKER_EVENTS_POLLS: &str = "worker.events.polls";
/// Events appended to the coordinator's fleet journal (post-dedup).
pub const FLEET_JOURNAL_EVENTS: &str = "fleet.journal.events";
/// Redelivered events the journal rejected via `(lease_id, seq)`.
pub const FLEET_JOURNAL_DUPLICATES: &str = "fleet.journal.duplicates";
/// Gauge: worst per-worker stream lag (`last_seq - acked_seq`).
pub const FLEET_JOURNAL_LAG: &str = "fleet.journal.lag";
/// Worker `/metrics` scrapes merged into the federated exposition.
pub const FLEET_FEDERATION_SCRAPES: &str = "fleet.federation.scrapes";
/// Worker `/metrics` scrapes that failed (kept serving stale text).
pub const FLEET_FEDERATION_ERRORS: &str = "fleet.federation.errors";

/// Trace records dropped by the recorder (memory cap or write error).
pub const OBS_DROPPED_RECORDS: &str = "obs.dropped_records";
/// Connections accepted by the telemetry HTTP server.
pub const OBS_HTTP_REQUESTS: &str = "obs.http.requests";
/// Connections the telemetry server refused with 503 (queue full).
pub const OBS_HTTP_REJECTED: &str = "obs.http.rejected";
/// Requests answered 405 (known route, wrong method).
pub const OBS_HTTP_METHOD_NOT_ALLOWED: &str = "obs.http.method_not_allowed";

/// Every name above, for the uniqueness and convention tests and for
/// tooling that wants to validate a trace against the registry.
pub fn all() -> &'static [&'static str] {
    &[
        SOFTMC_CMD,
        SOFTMC_CMD_ACT,
        SOFTMC_CMD_PRE,
        SOFTMC_CMD_PRE_ALL,
        SOFTMC_CMD_RD,
        SOFTMC_CMD_WR,
        SOFTMC_CMD_REF,
        SOFTMC_CMD_NOP,
        SOFTMC_HAMMER_BULK,
        SOFTMC_CANCELLED,
        SOFTMC_FAULT_INJECTED,
        SOFTMC_FAULT_HANG,
        SOFTMC_FAULT_EVENT,
        SOFTMC_HANG_EVENT,
        SOFTMC_ISSUE_ACT_NS,
        SOFTMC_ISSUE_PRE_NS,
        SOFTMC_ISSUE_PRE_ALL_NS,
        SOFTMC_ISSUE_RD_NS,
        SOFTMC_ISSUE_WR_NS,
        SOFTMC_ISSUE_REF_NS,
        SOFTMC_ISSUE_NOP_NS,
        DRAM_FLIP,
        DRAM_HAMMER_EPISODES,
        DRAM_HAMMER_FLUSHED,
        DRAM_ROW_WRITE,
        DRAM_ROW_READ,
        DRAM_ROWS_STORED,
        DRAM_TIMING_VIOLATION,
        DRAM_HAMMER_NS,
        DRAM_ROW_WRITE_NS,
        DRAM_ROW_READ_NS,
        FAULTMODEL_ROW_DERIVE,
        FAULTMODEL_CELLS_GLOBAL_HIT,
        FAULTMODEL_SURFACE_BUILD,
        FAULTMODEL_EVAL_EARLY_OUT,
        FAULTMODEL_CACHE_EVICT,
        CORE_BER_MEASUREMENTS,
        CORE_HC_FIRST,
        CORE_HC_FIRST_PROBE_NS,
        CAMPAIGN_SUCCEEDED,
        CAMPAIGN_RECOVERED,
        CAMPAIGN_QUARANTINED,
        CAMPAIGN_RETRIES,
        CAMPAIGN_TIMEOUT,
        CAMPAIGN_CANCELLED,
        CAMPAIGN_RETRY_EVENT,
        CAMPAIGN_QUARANTINE_EVENT,
        CAMPAIGN_CHECKPOINT_LOADED,
        CAMPAIGN_CHECKPOINT_SAVED,
        CAMPAIGN_CHECKPOINT_STALE_TMP,
        CAMPAIGN_RESUME_SKIP,
        CAMPAIGN_MODULE,
        CAMPAIGN_MODULE_NS,
        CAMPAIGN_ATTEMPT,
        CAMPAIGN_HEARTBEAT,
        CAMPAIGN_PROGRESS_TOTAL,
        CAMPAIGN_PROGRESS_DONE,
        CAMPAIGN_PROGRESS_RUNNING,
        CAMPAIGN_ETA_MS,
        EXECUTOR_QUEUE_DEPTH,
        EXECUTOR_WATCHDOG,
        EXECUTOR_QUEUE_WAIT_NS,
        DEFENSE_REFRESH,
        DEFENSE_VICTIM_REFRESH,
        DEFENSE_THROTTLE,
        DEFENSE_THROTTLE_PS,
        BENCH_TARGET,
        BENCH_WORKLOAD,
        FLEET_DISPATCH,
        FLEET_REDISPATCH,
        FLEET_COMMIT,
        FLEET_DUPLICATE,
        FLEET_LEASE_EXPIRED,
        FLEET_HEARTBEAT_MISSED,
        FLEET_WORKER_SUSPECT,
        FLEET_QUARANTINED,
        FLEET_GRANT_EVENT,
        FLEET_EXPIRE_EVENT,
        FLEET_CHECKPOINT_LOADED,
        FLEET_CHECKPOINT_SAVED,
        FLEET_BREAKER_TRIP,
        FLEET_BREAKER_HALF_OPEN,
        FLEET_BREAKER_CLOSE,
        FLEET_BREAKER_EVICTED,
        FLEET_BREAKER_OPEN,
        FLEET_BREAKER_EVENT,
        FLEET_DEGRADED,
        WORKER_ADMISSION_SHED,
        WORKER_ADMISSION_QUEUED,
        NETFAULT_INJECTED,
        NETFAULT_EVENT,
        WORKER_JOBS_ACCEPTED,
        WORKER_JOBS_REJECTED,
        WORKER_JOBS_COMPLETED,
        WORKER_JOBS_FAILED,
        WORKER_JOBS_CANCELLED,
        FLEET_RUN_SPAN,
        FLEET_DISPATCH_RPC,
        WORKER_JOB_SPAN,
        FAULTMODEL_KERNEL_SPAN,
        FLEET_TRACE_SEGMENT,
        OBS_TRACE_SHED,
        WORKER_EVENTS_EMITTED,
        WORKER_EVENTS_DROPPED,
        WORKER_EVENTS_POLLS,
        FLEET_JOURNAL_EVENTS,
        FLEET_JOURNAL_DUPLICATES,
        FLEET_JOURNAL_LAG,
        FLEET_FEDERATION_SCRAPES,
        FLEET_FEDERATION_ERRORS,
        OBS_DROPPED_RECORDS,
        OBS_HTTP_REQUESTS,
        OBS_HTTP_REJECTED,
        OBS_HTTP_METHOD_NOT_ALLOWED,
    ]
}

/// Whether `name` follows the registry convention: non-empty
/// `.`-separated segments of `[a-z0-9_]`.
pub fn follows_convention(name: &str) -> bool {
    !name.is_empty()
        && name.split('.').all(|seg| {
            !seg.is_empty()
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn names_are_unique() {
        let mut seen = BTreeSet::new();
        for n in all() {
            assert!(seen.insert(*n), "duplicate metric name '{n}' forks a time series");
        }
    }

    #[test]
    fn names_follow_convention() {
        for n in all() {
            assert!(follows_convention(n), "'{n}' violates the naming convention");
        }
    }

    #[test]
    fn convention_rejects_typos() {
        for bad in ["", ".", "a..b", "A.b", "a.b ", "a.b-ns", "a.", ".a"] {
            assert!(!follows_convention(bad), "'{bad}' should be rejected");
        }
        assert!(follows_convention("softmc.cmd.act"));
        assert!(follows_convention("executor.queue_wait.ns"));
    }

    #[test]
    fn duration_histograms_carry_a_unit_suffix() {
        for n in all().iter().filter(|n| n.contains("issue.") || n.ends_with("probe.ns")) {
            assert!(n.ends_with(".ns"), "duration histogram '{n}' is missing its unit");
        }
    }
}
