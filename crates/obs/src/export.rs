//! Prometheus text-exposition rendering of a [`Recorder`]'s state,
//! plus a periodic rollup publisher for crash-survivable time series.
//!
//! # Exposition mapping
//!
//! The rh-obs primitives map onto Prometheus metric families like so:
//!
//! | rh-obs                    | Prometheus                                     |
//! |---------------------------|------------------------------------------------|
//! | counter `a.b.c`           | counter `a_b_c`                                |
//! | gauge `a.b`               | gauge `a_b` (non-finite values are skipped)    |
//! | span stats `a.b`          | `a_b_span_count`, `a_b_span_total_us` counters |
//! |                           | and an `a_b_span_max_us` gauge                 |
//! | histogram `a.b.ns`        | histogram `a_b_ns`: cumulative `le`-labeled    |
//! |                           | `_bucket` series plus `_sum` and `_count`      |
//!
//! Metric names are sanitized to the Prometheus charset (`.` and any
//! other illegal byte become `_`); the original dotted name from
//! [`crate::names`] is preserved in the `# HELP` line. Histogram `le`
//! bounds are the inclusive upper edges of the log2 buckets in
//! [`crate::hist`] (`0, 1, 3, 7, …, 2^63-1`) followed by `+Inf`, so
//! the cumulative counts are monotone and the `+Inf` bucket equals
//! `_count` by construction.
//!
//! # Rollups
//!
//! [`RollupPublisher`] appends one compact JSON object per interval —
//! `{"ts_us":…,"counters":{…},"gauges":{…}}` — to a JSONL file and
//! flushes after every line, so a campaign killed mid-run still
//! leaves a usable time series up to the last tick. A final line is
//! written on [`RollupPublisher::stop`] so the series always ends at
//! the shutdown state.

use crate::hist::{self, HistSnapshot};
use crate::recorder::{push_json_string, Recorder};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Maps an rh-obs dotted metric name onto the Prometheus name charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: every `.` (and any other illegal byte)
/// becomes `_`, and a leading digit gets a `_` prefix.
#[must_use]
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the Prometheus text format: backslash,
/// double quote, and newline become `\\`, `\"`, and `\n`.
#[must_use]
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Appends one sample line `name{k="v",…} value` with escaped label
/// values. `name` must already be sanitized; `value` is any
/// Prometheus-parseable number rendering.
fn push_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: &str) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn push_family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Renders one log2 histogram snapshot as a Prometheus histogram
/// family: cumulative `_bucket` samples with inclusive `le` upper
/// bounds, then `+Inf`, `_sum`, and `_count`. Buckets above the
/// highest occupied one are elided (the `+Inf` sample covers them).
pub fn render_histogram(out: &mut String, h: &HistSnapshot) {
    let name = sanitize_metric_name(h.name);
    render_histogram_parts(
        out,
        &name,
        &format!("Log2-bucketed histogram `{}`.", h.name),
        &h.buckets,
        h.sum,
        h.count,
    );
}

/// Shared renderer behind [`render_histogram`] and the federation
/// pass: non-cumulative per-bucket counts in, conformant cumulative
/// exposition out. The last bucket's upper edge is `u64::MAX`;
/// `+Inf` stands in for it.
fn render_histogram_parts(
    out: &mut String,
    name: &str,
    help: &str,
    buckets: &[u64],
    sum: u64,
    count: u64,
) {
    push_family(out, name, "histogram", help);
    let top = buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
    let mut cumulative = 0u64;
    for (i, &c) in buckets.iter().enumerate().take(top + 1) {
        if i + 1 == buckets.len() {
            break;
        }
        cumulative += c;
        push_sample(
            out,
            &format!("{name}_bucket"),
            &[("le", &hist::bucket_hi(i).to_string())],
            &cumulative.to_string(),
        );
    }
    push_sample(out, &format!("{name}_bucket"), &[("le", "+Inf")], &count.to_string());
    push_sample(out, &format!("{name}_sum"), &[], &sum.to_string());
    push_sample(out, &format!("{name}_count"), &[], &count.to_string());
}

/// Renders the full `/metrics` payload: every counter, finite gauge,
/// span aggregate, and histogram currently held by `rec` and the
/// process-global histogram registry, in Prometheus text exposition
/// format (version 0.0.4).
#[must_use]
pub fn render_prometheus(rec: &Recorder) -> String {
    let mut out = String::new();
    for (name, v) in rec.counters() {
        let m = sanitize_metric_name(&name);
        push_family(&mut out, &m, "counter", &format!("Monotonic counter `{name}`."));
        push_sample(&mut out, &m, &[], &v.to_string());
    }
    for (name, v) in rec.gauges() {
        if !v.is_finite() {
            continue;
        }
        let m = sanitize_metric_name(&name);
        push_family(&mut out, &m, "gauge", &format!("Gauge `{name}` (last written value)."));
        push_sample(&mut out, &m, &[], &format!("{v}"));
    }
    for (name, s) in rec.span_stats() {
        let base = format!("{}_span", sanitize_metric_name(&name));
        let count = format!("{base}_count");
        push_family(&mut out, &count, "counter", &format!("Completed `{name}` spans."));
        push_sample(&mut out, &count, &[], &s.count.to_string());
        let total = format!("{base}_total_us");
        push_family(&mut out, &total, "counter", &format!("Total `{name}` span time, us."));
        push_sample(&mut out, &total, &[], &s.total_us.to_string());
        let max = format!("{base}_max_us");
        push_family(&mut out, &max, "gauge", &format!("Longest `{name}` span, us."));
        push_sample(&mut out, &max, &[], &s.max_us.to_string());
    }
    for h in hist::snapshot_all() {
        render_histogram(&mut out, &h);
    }
    out
}

// ---------------------------------------------------------------------------
// Metrics federation: one fleet exposition from many worker scrapes
// ---------------------------------------------------------------------------

/// One parsed sample from a scraped exposition (value kept as the
/// original text so federation never reformats a number it merely
/// forwards).
#[derive(Debug)]
struct FedSample {
    name: String,
    labels: Vec<(String, String)>,
    value: String,
}

/// Parses one label-set body (between `{` and `}`), unescaping `\\`,
/// `\"`, and `\n`. `None` on malformed input — the line is skipped.
fn parse_fed_labels(body: &str) -> Option<Vec<(String, String)>> {
    let mut out = Vec::new();
    if body.is_empty() {
        return Some(out);
    }
    let mut chars = body.chars();
    loop {
        let mut key = String::new();
        loop {
            match chars.next() {
                Some('=') => break,
                Some(c) => key.push(c),
                None => return None,
            }
        }
        if key.is_empty() || chars.next() != Some('"') {
            return None;
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    _ => return None,
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return None,
            }
        }
        out.push((key, value));
        match chars.next() {
            Some(',') => {}
            None => return Some(out),
            Some(_) => return None,
        }
    }
}

/// Leniently parses a text exposition into `(family, kind, samples)`
/// triples, in declaration order. Samples that precede any `# TYPE`,
/// belong to a different family than the current one, or fail to
/// parse are skipped — a half-written scrape from a faulty link must
/// degrade, not wedge the merge.
fn parse_exposition_families(text: &str) -> Vec<(String, String, Vec<FedSample>)> {
    let mut fams: Vec<(String, String, Vec<FedSample>)> = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some((name, kind)) = rest.split_once(' ') {
                fams.push((name.to_string(), kind.trim().to_string(), Vec::new()));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let Some((head, value)) = line.rsplit_once(' ') else { continue };
        let (name, labels) = match head.find('{') {
            Some(i) => {
                let Some(body) = head[i + 1..].strip_suffix('}') else { continue };
                let Some(labels) = parse_fed_labels(body) else { continue };
                (&head[..i], labels)
            }
            None => (head, Vec::new()),
        };
        let Some((fam, kind, samples)) = fams.last_mut() else { continue };
        let belongs = if kind == "histogram" {
            name == format!("{fam}_bucket")
                || name == format!("{fam}_sum")
                || name == format!("{fam}_count")
        } else {
            name == *fam
        };
        if belongs {
            samples.push(FedSample {
                name: name.to_string(),
                labels,
                value: value.to_string(),
            });
        }
    }
    fams
}

fn parse_prom_u64(v: &str) -> Option<u64> {
    v.parse::<u64>().ok().or_else(|| {
        v.parse::<f64>()
            .ok()
            .filter(|f| f.is_finite() && *f >= 0.0)
            .map(|f| f as u64)
    })
}

/// Merges the coordinator's own exposition with scraped worker
/// expositions into one fleet payload:
///
/// - **Counters and gauges** keep one sample per source: the
///   coordinator's stays unlabeled (so existing line-anchored greps
///   and `repro top`'s exact-match reader keep working) and each
///   worker's gains a `worker="addr"` label. One `# TYPE` per family.
/// - **Histograms** are merged element-wise: every source's
///   cumulative `le` buckets are de-cumulated, the deltas summed into
///   the aligned log2 buckets from [`crate::hist`] (foreign edges
///   land in the containing log2 bucket), and the merged family
///   re-renders cumulative — monotone with `+Inf == _count` by
///   construction. Bucket samples carry only the `le` label, so the
///   fleet histogram is one series family, not per-worker shards.
///
/// A family whose kind disagrees across sources keeps the
/// first-declared kind and drops the conflicting samples; duplicate
/// `(labels)` rows within one family are dropped after the first.
#[must_use]
pub fn federate(own: &str, workers: &[(String, String)]) -> String {
    #[derive(Debug)]
    struct MergedHist {
        buckets: Vec<u64>,
        sum: u64,
        count: u64,
    }
    let mut order: Vec<String> = Vec::new();
    let mut kinds: std::collections::BTreeMap<String, String> = std::collections::BTreeMap::new();
    let mut scalars: std::collections::BTreeMap<
        String,
        Vec<(Option<String>, Vec<(String, String)>, String)>,
    > = std::collections::BTreeMap::new();
    let mut hists: std::collections::BTreeMap<String, MergedHist> =
        std::collections::BTreeMap::new();

    let mut sources: Vec<(Option<&str>, &str)> = vec![(None, own)];
    let mut sorted: Vec<&(String, String)> = workers.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    sources.extend(sorted.iter().map(|(addr, text)| (Some(addr.as_str()), text.as_str())));

    for (source, text) in sources {
        for (fam, kind, samples) in parse_exposition_families(text) {
            let declared = kinds.entry(fam.clone()).or_insert_with(|| {
                order.push(fam.clone());
                kind.clone()
            });
            if *declared != kind {
                continue;
            }
            if kind == "histogram" {
                let h = hists.entry(fam.clone()).or_insert_with(|| MergedHist {
                    buckets: vec![0; hist::NUM_BUCKETS],
                    sum: 0,
                    count: 0,
                });
                let mut prev = 0u64;
                for s in &samples {
                    if s.name.len() == fam.len() + 7 && s.name.ends_with("_bucket") {
                        let Some((_, le)) = s.labels.iter().find(|(k, _)| k == "le") else {
                            continue;
                        };
                        let idx = if le == "+Inf" {
                            hist::NUM_BUCKETS - 1
                        } else {
                            match parse_prom_u64(le) {
                                Some(edge) => hist::bucket_of(edge),
                                None => continue,
                            }
                        };
                        let Some(cum) = parse_prom_u64(&s.value) else { continue };
                        let delta = cum.saturating_sub(prev);
                        prev = cum;
                        h.buckets[idx] = h.buckets[idx].saturating_add(delta);
                    } else if s.name.ends_with("_sum") {
                        h.sum = h.sum.saturating_add(parse_prom_u64(&s.value).unwrap_or(0));
                    } else if s.name.ends_with("_count") {
                        h.count = h.count.saturating_add(parse_prom_u64(&s.value).unwrap_or(0));
                    }
                }
            } else {
                let rows = scalars.entry(fam.clone()).or_default();
                for s in samples {
                    rows.push((source.map(str::to_string), s.labels, s.value));
                }
            }
        }
    }

    let mut out = String::new();
    for fam in &order {
        let Some(kind) = kinds.get(fam) else { continue };
        if kind == "histogram" {
            let Some(h) = hists.get(fam) else { continue };
            // Guard the +Inf == _count invariant even against a
            // source whose own bookkeeping disagrees.
            let total: u64 = h.buckets.iter().sum();
            render_histogram_parts(
                &mut out,
                fam,
                &format!("Fleet-federated log2 histogram `{fam}`."),
                &h.buckets,
                h.sum,
                h.count.max(total),
            );
            continue;
        }
        let Some(rows) = scalars.get(fam) else { continue };
        if rows.is_empty() {
            continue;
        }
        push_family(&mut out, fam, kind, &format!("Fleet-federated {kind} `{fam}`."));
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        for (source, labels, value) in rows {
            let mut with_worker: Vec<(&str, &str)> =
                labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            if let Some(addr) = source.as_deref() {
                with_worker.push(("worker", addr));
            }
            if !seen.insert(format!("{with_worker:?}")) {
                continue;
            }
            push_sample(&mut out, fam, &with_worker, value);
        }
    }
    out
}

/// Shared slot the fleet coordinator publishes scraped worker
/// expositions into and the telemetry server's `/metrics` handler
/// renders from. With no sources published, [`render`](Self::render)
/// passes the coordinator's own exposition through byte-identically,
/// so a non-fleet campaign pays nothing.
#[derive(Debug, Default)]
pub struct FederationHub {
    sources: std::sync::Mutex<std::collections::BTreeMap<String, String>>,
}

impl FederationHub {
    /// An empty hub.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(
        &self,
    ) -> std::sync::MutexGuard<'_, std::collections::BTreeMap<String, String>> {
        match self.sources.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Stores (or refreshes) one worker's scraped exposition.
    pub fn publish(&self, worker: &str, exposition: String) {
        self.lock().insert(worker.to_string(), exposition);
    }

    /// Drops a worker's exposition (evicted or shut down).
    pub fn remove(&self, worker: &str) {
        self.lock().remove(worker);
    }

    /// Whether any worker exposition is currently published.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Workers currently published, sorted by address.
    #[must_use]
    pub fn workers(&self) -> Vec<String> {
        self.lock().keys().cloned().collect()
    }

    /// The federated exposition for the current sources — or `own`
    /// unchanged when none are published.
    #[must_use]
    pub fn render(&self, own: &str) -> String {
        let sources: Vec<(String, String)> =
            self.lock().iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        if sources.is_empty() {
            own.to_string()
        } else {
            federate(own, &sources)
        }
    }
}

/// Renders one rollup line: a compact JSON object with the recorder's
/// relative timestamp and its current counters and finite gauges,
/// newline-terminated.
#[must_use]
pub fn render_rollup_line(rec: &Recorder) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"ts_us\":{},\"counters\":{{", rec.elapsed_us());
    for (i, (k, v)) in rec.counters().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, k);
        let _ = write!(out, ":{v}");
    }
    out.push_str("},\"gauges\":{");
    let mut first = true;
    for (k, v) in rec.gauges() {
        if !v.is_finite() {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        push_json_string(&mut out, &k);
        let _ = write!(out, ":{v}");
    }
    out.push_str("}}\n");
    out
}

/// Background thread appending one [`render_rollup_line`] snapshot of
/// a shared [`Recorder`] to a JSONL file every `interval`, flushing
/// after each line. Stop it with [`RollupPublisher::stop`] (which
/// writes one final line) or by dropping it.
pub struct RollupPublisher {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<u64>>,
}

impl std::fmt::Debug for RollupPublisher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RollupPublisher").finish_non_exhaustive()
    }
}

impl RollupPublisher {
    /// Starts publishing snapshots of `rec` to `path` every
    /// `interval` (floored at 10 ms). The file is created eagerly so
    /// configuration errors surface here, not in the thread.
    ///
    /// # Errors
    ///
    /// I/O errors from creating the rollup file.
    pub fn start(rec: Arc<Recorder>, path: &Path, interval: Duration) -> io::Result<Self> {
        let file = File::create(path)?;
        let interval = interval.max(Duration::from_millis(10));
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::Builder::new().name("rh-obs-rollup".into()).spawn(move || {
            let mut writer = BufWriter::new(file);
            let mut lines = 0u64;
            'publish: loop {
                let deadline = Instant::now() + interval;
                loop {
                    if stop_flag.load(Ordering::Relaxed) {
                        break 'publish;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    std::thread::sleep((deadline - now).min(Duration::from_millis(25)));
                }
                lines += u64::from(write_rollup(&mut writer, &rec));
            }
            // One final line so the series ends at the shutdown state.
            lines += u64::from(write_rollup(&mut writer, &rec));
            lines
        })?;
        Ok(Self { stop, handle: Some(handle) })
    }

    /// Signals the publisher thread, waits for it to write its final
    /// line, and returns the total number of lines written.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::SeqCst);
        self.handle.take().and_then(|h| h.join().ok()).unwrap_or(0)
    }
}

impl Drop for RollupPublisher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Writes one rollup line and flushes; returns whether both succeeded.
fn write_rollup(writer: &mut BufWriter<File>, rec: &Recorder) -> bool {
    let line = render_rollup_line(rec);
    writer.write_all(line.as_bytes()).is_ok() && writer.flush().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FieldValue;
    use crate::Sink as _;

    #[test]
    fn sanitizes_names_to_the_prometheus_charset() {
        assert_eq!(sanitize_metric_name("campaign.module.ns"), "campaign_module_ns");
        assert_eq!(sanitize_metric_name("already_fine:ok"), "already_fine:ok");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("sp ace-dash"), "sp_ace_dash");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn escapes_label_values() {
        assert_eq!(escape_label_value(r#"a\b"c"#), r#"a\\b\"c"#);
        assert_eq!(escape_label_value("line\nbreak"), "line\\nbreak");
        assert_eq!(escape_label_value("plain"), "plain");
    }

    #[test]
    fn renders_counters_gauges_and_spans() {
        let rec = Recorder::new();
        rec.counter("dram.flip", 42);
        rec.gauge("executor.queue_depth", 3.0);
        rec.gauge("bad.gauge", f64::NAN);
        rec.span_end("campaign.module", Duration::from_micros(120), &[]);
        let text = render_prometheus(&rec);
        assert!(text.contains("# TYPE dram_flip counter\ndram_flip 42\n"));
        assert!(text.contains("# TYPE executor_queue_depth gauge\nexecutor_queue_depth 3\n"));
        assert!(!text.contains("bad_gauge"), "non-finite gauges must be skipped");
        assert!(text.contains("campaign_module_span_count 1\n"));
        assert!(text.contains("campaign_module_span_total_us 120\n"));
        assert!(text.contains("campaign_module_span_max_us 120\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_inf_matches_count() {
        let mut h = HistSnapshot::empty("softmc.issue.ns");
        // values 0, 1, 2, 2, and one huge outlier in the top bucket.
        h.buckets[0] = 1;
        h.buckets[1] = 1;
        h.buckets[2] = 2;
        h.buckets[64] = 1;
        h.count = 5;
        h.sum = 5 + (1 << 63);
        h.max = 1 << 63;
        let mut out = String::new();
        render_histogram(&mut out, &h);
        assert!(out.contains("# TYPE softmc_issue_ns histogram"));
        assert!(out.contains("softmc_issue_ns_bucket{le=\"0\"} 1\n"));
        assert!(out.contains("softmc_issue_ns_bucket{le=\"1\"} 2\n"));
        assert!(out.contains("softmc_issue_ns_bucket{le=\"3\"} 4\n"));
        assert!(out.contains("softmc_issue_ns_bucket{le=\"+Inf\"} 5\n"));
        assert!(out.contains("softmc_issue_ns_count 5\n"));
        // The u64::MAX upper edge is elided: +Inf stands in for it.
        assert!(!out.contains(&u64::MAX.to_string()));
    }

    #[test]
    fn federate_labels_worker_scalars_and_keeps_own_unlabeled() {
        let own = "# HELP a A.\n# TYPE a counter\na 3\n";
        let workers = vec![
            ("127.0.0.1:9002".to_string(), "# TYPE a counter\na 5\n# TYPE b gauge\nb 1\n".to_string()),
            ("127.0.0.1:9001".to_string(), "# TYPE a counter\na 4\n".to_string()),
        ];
        let text = federate(own, &workers);
        let a_pos = text.find("# TYPE a counter").unwrap_or_else(|| panic!("{text}"));
        assert!(text.contains("\na 3\n"), "own sample must stay unlabeled: {text}");
        let w1 = text.find("a{worker=\"127.0.0.1:9001\"} 4").unwrap_or_else(|| panic!("{text}"));
        let w2 = text.find("a{worker=\"127.0.0.1:9002\"} 5").unwrap_or_else(|| panic!("{text}"));
        assert!(a_pos < w1 && w1 < w2, "workers must sort by address: {text}");
        assert!(text.contains("b{worker=\"127.0.0.1:9002\"} 1"));
        assert_eq!(text.matches("# TYPE a counter").count(), 1, "one TYPE per family");
    }

    #[test]
    fn federate_merges_histograms_element_wise_and_stays_cumulative() {
        let mut own = String::new();
        let mut h = HistSnapshot::empty("softmc.issue.ns");
        h.buckets[0] = 1;
        h.buckets[2] = 2;
        h.count = 3;
        h.sum = 5;
        render_histogram(&mut own, &h);
        let mut worker = String::new();
        let mut hw = HistSnapshot::empty("softmc.issue.ns");
        hw.buckets[1] = 1;
        hw.buckets[2] = 1;
        hw.buckets[64] = 1;
        hw.count = 3;
        hw.sum = 100;
        render_histogram(&mut worker, &hw);
        let text = federate(&own, &[("w".to_string(), worker)]);
        assert!(text.contains("softmc_issue_ns_bucket{le=\"0\"} 1\n"), "{text}");
        assert!(text.contains("softmc_issue_ns_bucket{le=\"1\"} 2\n"), "{text}");
        assert!(text.contains("softmc_issue_ns_bucket{le=\"3\"} 5\n"), "{text}");
        assert!(text.contains("softmc_issue_ns_bucket{le=\"+Inf\"} 6\n"), "{text}");
        assert!(text.contains("softmc_issue_ns_count 6\n"), "{text}");
        assert!(text.contains("softmc_issue_ns_sum 105\n"), "{text}");
        assert!(
            !text.contains("worker=\"w\""),
            "histogram buckets must stay le-only: {text}"
        );
    }

    #[test]
    fn federate_skips_kind_conflicts_and_tolerates_garbage() {
        let own = "# TYPE a counter\na 1\n";
        let worker = "not a sample line at all\n# TYPE a gauge\na 9\n# TYPE c counter\nc{q=\"x\\\"y\"} 2\ntruncated_without_value\n";
        let text = federate(own, &[("w".to_string(), worker.to_string())]);
        assert!(text.contains("\na 1\n"));
        assert!(!text.contains("a{worker"), "conflicting kind must be dropped: {text}");
        assert!(text.contains("c{q=\"x\\\"y\",worker=\"w\"} 2"), "{text}");
    }

    #[test]
    fn federation_hub_passes_own_through_when_empty() {
        let hub = FederationHub::new();
        let own = "# HELP a A.\n# TYPE a counter\na 3\n";
        assert!(hub.is_empty());
        assert_eq!(hub.render(own), own, "empty hub must be byte-identical passthrough");
        hub.publish("w", "# TYPE a counter\na 2\n".to_string());
        assert!(!hub.is_empty());
        assert_eq!(hub.workers(), vec!["w".to_string()]);
        assert!(hub.render(own).contains("a{worker=\"w\"} 2"));
        hub.remove("w");
        assert_eq!(hub.render(own), own);
    }

    #[test]
    fn rollup_line_is_one_json_object() {
        let rec = Recorder::new();
        rec.counter("campaign.succeeded", 7);
        rec.gauge("campaign.eta_ms", 1500.0);
        rec.event("noise", &[("k", FieldValue::U64(1))]);
        let line = render_rollup_line(&rec);
        assert!(line.ends_with('\n'));
        assert_eq!(line.lines().count(), 1);
        assert!(line.contains("\"counters\":{\"campaign.succeeded\":7}"));
        assert!(line.contains("\"campaign.eta_ms\":1500"));
        assert!(line.starts_with("{\"ts_us\":"));
    }

    #[test]
    fn rollup_publisher_appends_and_survives_stop() {
        let dir = std::env::temp_dir().join(format!("rh-obs-rollup-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("rollup.jsonl");
        let rec = Arc::new(Recorder::new());
        rec.counter("campaign.succeeded", 1);
        let publisher = RollupPublisher::start(rec.clone(), &path, Duration::from_millis(20))
            .unwrap_or_else(|e| panic!("{e}"));
        std::thread::sleep(Duration::from_millis(90));
        rec.counter("campaign.succeeded", 1);
        let lines = publisher.stop();
        assert!(lines >= 2, "expected periodic + final lines, got {lines}");
        let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(on_disk.lines().count() as u64, lines);
        // The final line reflects the last counter bump.
        let last = on_disk.lines().last().unwrap_or_default();
        assert!(last.contains("\"campaign.succeeded\":2"), "stale final line: {last}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
