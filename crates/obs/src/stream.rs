//! Per-job lifecycle event streams: the wire layer behind the
//! worker's `GET /events?since=<seq>` endpoint and the coordinator's
//! append-only fleet journal.
//!
//! A worker owns one [`EventRing`] — a bounded buffer of
//! [`JobEvent`]s stamped with a per-worker **monotone sequence
//! number** (starting at 1, never reused, assigned under the ring
//! lock so buffer order equals seq order). Consumers poll with a
//! resume cursor (`since`) and receive a bounded JSONL batch; a
//! consumer that reconnects, times out, or re-reads after a breaker
//! trip simply re-presents its last cursor and gets at-least-once
//! delivery. The coordinator collapses that to exactly-once with
//! [`EventDedup`], keyed by `(lease_id, seq)` — lease ids are minted
//! globally unique by the coordinator, so the pair is unique across
//! the whole fleet even though seqs are per-worker.
//!
//! The codec is deliberately forgiving on the read side
//! ([`parse_events`] skips malformed or truncated lines and counts
//! them instead of failing) because a journal cut mid-record by a
//! crash, or a batch truncated by a fault-injected link, must never
//! wedge analysis. The write side is strict: one event per line, keys
//! in fixed order, strings JSON-escaped.
//!
//! Ring overflow drops the *oldest* events (the newest are the ones a
//! live consumer is about to read) and counts the loss; a consumer
//! detects the gap as a jump in `seq` and the drop count is exposed
//! as `worker.events.dropped`.

use crate::analyze::{parse_json, Json};
use crate::names;
use std::collections::{HashSet, VecDeque};
use std::fmt::Write as _;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Lifecycle stage of one fleet job, as carried on the event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// Job admitted and started immediately.
    Accepted,
    /// Job admitted into the wait queue.
    Queued,
    /// Job began executing on a worker thread.
    Started,
    /// Mid-flight state change (e.g. promoted from queue to a slot).
    Progress,
    /// The job's payload observed bit flips; `value` carries how many.
    FlipFound,
    /// Job finished with a committed result (terminal).
    Committed,
    /// Job finished with an error (terminal); `detail` carries it.
    Failed,
    /// Job cancelled before or during execution (terminal).
    Cancelled,
    /// Admission control shed the job (`429`); terminal for this
    /// lease on this worker, though the coordinator will re-dispatch.
    Shed,
}

impl EventKind {
    /// Every kind, in lifecycle order.
    pub const ALL: [EventKind; 9] = [
        EventKind::Accepted,
        EventKind::Queued,
        EventKind::Started,
        EventKind::Progress,
        EventKind::FlipFound,
        EventKind::Committed,
        EventKind::Failed,
        EventKind::Cancelled,
        EventKind::Shed,
    ];

    /// Wire name (snake_case, stable).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Accepted => "accepted",
            EventKind::Queued => "queued",
            EventKind::Started => "started",
            EventKind::Progress => "progress",
            EventKind::FlipFound => "flip_found",
            EventKind::Committed => "committed",
            EventKind::Failed => "failed",
            EventKind::Cancelled => "cancelled",
            EventKind::Shed => "shed",
        }
    }

    /// Parses a wire name; unknown kinds (a newer worker talking to
    /// an older coordinator) return `None` and the record is skipped.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.as_str() == s)
    }

    /// Whether this kind ends the job's lifecycle on its worker.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            EventKind::Committed | EventKind::Failed | EventKind::Cancelled | EventKind::Shed
        )
    }
}

/// One per-job lifecycle event. `worker` is empty on the worker's own
/// wire (the consumer knows whom it polled) and filled in by the
/// coordinator when the event lands in the fleet journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobEvent {
    /// Per-worker monotone sequence number, starting at 1.
    pub seq: u64,
    /// Lease the event belongs to (0 for worker-global events).
    pub lease_id: u64,
    /// Lifecycle stage.
    pub kind: EventKind,
    /// Module the job characterizes (may be empty for shed grants
    /// rejected before decode).
    pub module: String,
    /// Microseconds since the worker's ring was created.
    pub ts_us: u64,
    /// Kind-specific magnitude: flips for [`EventKind::FlipFound`],
    /// queue depth for [`EventKind::Queued`], otherwise 0.
    pub value: u64,
    /// Kind-specific free text (error message for
    /// [`EventKind::Failed`]); empty otherwise.
    pub detail: String,
    /// Worker address, filled by the journal writer; empty on the
    /// worker wire.
    pub worker: String,
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl JobEvent {
    /// Renders the event as one JSONL line (trailing newline
    /// included). `value`, `detail`, and `worker` are omitted when
    /// they hold their defaults to keep high-rate streams tight.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"seq\":{},\"lease_id\":{},\"kind\":\"{}\",\"module\":",
            self.seq,
            self.lease_id,
            self.kind.as_str()
        );
        push_json_str(&mut out, &self.module);
        let _ = write!(out, ",\"ts_us\":{}", self.ts_us);
        if self.value != 0 {
            let _ = write!(out, ",\"value\":{}", self.value);
        }
        if !self.detail.is_empty() {
            out.push_str(",\"detail\":");
            push_json_str(&mut out, &self.detail);
        }
        if !self.worker.is_empty() {
            out.push_str(",\"worker\":");
            push_json_str(&mut out, &self.worker);
        }
        out.push_str("}\n");
        out
    }

    /// Parses one event from an already-parsed JSON record. `None`
    /// when required fields are missing/ill-typed or the kind is
    /// unknown.
    #[must_use]
    pub fn from_json(rec: &Json) -> Option<Self> {
        let seq = rec.get("seq")?.as_u64()?;
        let lease_id = rec.get("lease_id")?.as_u64()?;
        let kind = EventKind::parse(rec.get("kind")?.as_str()?)?;
        let ts_us = rec.get("ts_us")?.as_u64()?;
        Some(JobEvent {
            seq,
            lease_id,
            kind,
            module: rec.get("module").and_then(Json::as_str).unwrap_or("").to_string(),
            ts_us,
            value: rec.get("value").and_then(Json::as_u64).unwrap_or(0),
            detail: rec.get("detail").and_then(Json::as_str).unwrap_or("").to_string(),
            worker: rec.get("worker").and_then(Json::as_str).unwrap_or("").to_string(),
        })
    }
}

/// Outcome of a lenient JSONL parse: the events that decoded plus a
/// count of lines that did not (truncated, corrupt, unknown kind).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedEvents {
    /// Events in input order.
    pub events: Vec<JobEvent>,
    /// Lines skipped as malformed or unknown.
    pub skipped: u64,
}

/// Parses a JSONL event batch or journal leniently: malformed lines
/// — including a final line cut mid-record by a crash or a truncated
/// HTTP body — are counted, never fatal, and never panic.
#[must_use]
pub fn parse_events(text: &str) -> ParsedEvents {
    let mut out = ParsedEvents::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_json(line).ok().as_ref().and_then(JobEvent::from_json) {
            Some(ev) => out.events.push(ev),
            None => out.skipped += 1,
        }
    }
    out
}

/// Exactly-once admission over an at-least-once stream: keyed by
/// `(lease_id, seq)`, which is globally unique (lease ids are minted
/// by the coordinator; seqs are monotone per worker).
#[derive(Debug, Default)]
pub struct EventDedup {
    seen: HashSet<(u64, u64)>,
}

impl EventDedup {
    /// An empty dedup set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` the first time this `(lease_id, seq)` is presented,
    /// `false` on every redelivery.
    pub fn admit(&mut self, ev: &JobEvent) -> bool {
        self.seen.insert((ev.lease_id, ev.seq))
    }

    /// Distinct events admitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether nothing has been admitted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

/// One bounded batch from [`EventRing::since`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventBatch {
    /// Events with `seq > cursor`, oldest first, at most `max`.
    pub events: Vec<JobEvent>,
    /// Highest seq the ring has assigned (equals the last event's seq
    /// when the batch drained the ring).
    pub last_seq: u64,
    /// Ring-lifetime count of events evicted by overflow; a consumer
    /// whose cursor fell behind sees the gap as a jump in `seq`.
    pub dropped: u64,
}

#[derive(Debug, Default)]
struct RingInner {
    events: VecDeque<JobEvent>,
    next_seq: u64,
    acked: u64,
    dropped: u64,
}

/// Bounded per-worker event buffer with monotone seq assignment and a
/// bounded long-poll read side. This is wire-protocol state, not
/// observability: it exists (and fills) whether or not the `rh-obs`
/// sink is installed, so the disabled-observability fast path stays a
/// single relaxed load.
#[derive(Debug)]
pub struct EventRing {
    cap: usize,
    t0: Instant,
    inner: Mutex<RingInner>,
    cv: Condvar,
}

impl EventRing {
    /// A ring holding at most `cap` events (oldest evicted first).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            t0: Instant::now(),
            inner: Mutex::new(RingInner::default()),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RingInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Appends one event, assigning the next seq, and wakes waiting
    /// long-polls. Returns the assigned seq.
    pub fn emit(
        &self,
        kind: EventKind,
        lease_id: u64,
        module: &str,
        value: u64,
        detail: &str,
    ) -> u64 {
        self.emit_full(kind, lease_id, module, value, detail).seq
    }

    /// [`emit`](Self::emit), returning the full stamped event — for
    /// callers that also need to ship a byte-identical copy out of
    /// band (the worker embeds the terminal event in its Done poll
    /// reply so a consumer that never reaches `/events` still sees
    /// it; dedup by `(lease_id, seq)` collapses the two copies).
    pub fn emit_full(
        &self,
        kind: EventKind,
        lease_id: u64,
        module: &str,
        value: u64,
        detail: &str,
    ) -> JobEvent {
        let ts_us = u64::try_from(self.t0.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut inner = self.lock();
        inner.next_seq += 1;
        let ev = JobEvent {
            seq: inner.next_seq,
            lease_id,
            kind,
            module: module.to_string(),
            ts_us,
            value,
            detail: detail.to_string(),
            worker: String::new(),
        };
        inner.events.push_back(ev.clone());
        let mut evicted = 0u64;
        while inner.events.len() > self.cap {
            inner.events.pop_front();
            inner.dropped += 1;
            evicted += 1;
        }
        drop(inner);
        self.cv.notify_all();
        if crate::enabled() {
            crate::counter(names::WORKER_EVENTS_EMITTED, 1);
            if evicted > 0 {
                crate::counter(names::WORKER_EVENTS_DROPPED, evicted);
            }
        }
        ev
    }

    /// Events with `seq > cursor`, oldest first, at most `max`. Also
    /// records `cursor` as the consumer's acknowledged position (the
    /// resume cursor it presented proves everything at or below it
    /// was durably received). With a nonzero `wait` and nothing new,
    /// blocks up to that long for an event to arrive (bounded
    /// long-poll).
    #[must_use]
    pub fn since(&self, cursor: u64, max: usize, wait: Duration) -> EventBatch {
        let deadline = Instant::now() + wait;
        let mut inner = self.lock();
        inner.acked = inner.acked.max(cursor);
        loop {
            if inner.next_seq > cursor || wait.is_zero() {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _timeout) = match self.cv.wait_timeout(inner, deadline - now) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            inner = guard;
        }
        let events: Vec<JobEvent> =
            inner.events.iter().filter(|e| e.seq > cursor).take(max.max(1)).cloned().collect();
        EventBatch { events, last_seq: inner.next_seq, dropped: inner.dropped }
    }

    /// Highest seq assigned so far (0 before the first event).
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.lock().next_seq
    }

    /// Highest resume cursor any consumer has presented — i.e. the
    /// seq up to which delivery is acknowledged. `last_seq - acked`
    /// is the journal lag `/progress` exposes.
    #[must_use]
    pub fn acked_seq(&self) -> u64 {
        self.lock().acked
    }

    /// Ring-lifetime count of overflow-evicted events.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Renders a batch as JSONL, ready for the `/events` reply body.
    #[must_use]
    pub fn to_jsonl(events: &[JobEvent]) -> String {
        let mut out = String::with_capacity(events.len() * 96);
        for ev in events {
            out.push_str(&ev.to_json_line());
        }
        out
    }
}

/// Renders one fleet-journal line: the event with the source worker's
/// address attributed.
#[must_use]
pub fn journal_line(worker: &str, ev: &JobEvent) -> String {
    let mut stamped = ev.clone();
    stamped.worker = worker.to_string();
    stamped.to_json_line()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqs_are_monotone_and_batches_resume_from_cursors() {
        let ring = EventRing::new(64);
        let s1 = ring.emit(EventKind::Accepted, 7, "A0", 0, "");
        let s2 = ring.emit(EventKind::Started, 7, "A0", 0, "");
        let s3 = ring.emit(EventKind::Committed, 7, "A0", 0, "");
        assert_eq!((s1, s2, s3), (1, 2, 3));
        assert_eq!(ring.last_seq(), 3);

        let batch = ring.since(0, 100, Duration::ZERO);
        assert_eq!(batch.events.len(), 3);
        assert_eq!(batch.last_seq, 3);
        let resumed = ring.since(s2, 100, Duration::ZERO);
        assert_eq!(resumed.events.len(), 1);
        assert_eq!(resumed.events[0].kind, EventKind::Committed);
        assert_eq!(ring.acked_seq(), s2, "cursor acknowledges delivery");
        assert!(ring.since(3, 100, Duration::ZERO).events.is_empty());
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let ring = EventRing::new(2);
        for i in 0..5u64 {
            ring.emit(EventKind::Progress, i, "m", 0, "");
        }
        assert_eq!(ring.dropped(), 3);
        let batch = ring.since(0, 100, Duration::ZERO);
        let seqs: Vec<u64> = batch.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4, 5], "newest survive; the gap is visible in seq");
        assert_eq!(batch.dropped, 3);
    }

    #[test]
    fn jsonl_round_trips_including_escapes() {
        let ev = JobEvent {
            seq: 42,
            lease_id: 16_777_217,
            kind: EventKind::Failed,
            module: "B3".to_string(),
            ts_us: 1234,
            value: 9,
            detail: "host \"link\"\nreset\t\u{1}".to_string(),
            worker: String::new(),
        };
        let line = ev.to_json_line();
        let parsed = parse_events(&line);
        assert_eq!(parsed.skipped, 0);
        assert_eq!(parsed.events, vec![ev.clone()]);
        // Journal attribution survives too.
        let journal = journal_line("127.0.0.1:9", &ev);
        let entry = &parse_events(&journal).events[0];
        assert_eq!(entry.worker, "127.0.0.1:9");
        assert_eq!(entry.detail, ev.detail);
    }

    #[test]
    fn lenient_parse_skips_garbage_and_truncation() {
        let good = JobEvent {
            seq: 1,
            lease_id: 2,
            kind: EventKind::Accepted,
            module: "m".to_string(),
            ts_us: 3,
            value: 0,
            detail: String::new(),
            worker: String::new(),
        }
        .to_json_line();
        let mut text = String::new();
        text.push_str(&good);
        text.push_str("not json at all\n");
        text.push_str("{\"seq\":9,\"kind\":\"warp\",\"lease_id\":1,\"ts_us\":0}\n");
        text.push_str(&good[..good.len() - 7]); // cut mid-record
        let parsed = parse_events(&text);
        assert_eq!(parsed.events.len(), 1);
        assert_eq!(parsed.skipped, 3);
    }

    #[test]
    fn dedup_collapses_at_least_once_to_exactly_once() {
        let ring = EventRing::new(16);
        ring.emit(EventKind::Accepted, 5, "m", 0, "");
        ring.emit(EventKind::Committed, 5, "m", 0, "");
        let batch = ring.since(0, 100, Duration::ZERO);
        let mut dedup = EventDedup::new();
        let mut admitted = 0;
        // The consumer crashes and replays the same batch three times.
        for _ in 0..3 {
            for ev in &batch.events {
                if dedup.admit(ev) {
                    admitted += 1;
                }
            }
        }
        assert_eq!(admitted, 2);
        assert_eq!(dedup.len(), 2);
        // A different lease with the same seq is a different event.
        let other = JobEvent { lease_id: 6, ..batch.events[0].clone() };
        assert!(dedup.admit(&other));
    }

    #[test]
    fn long_poll_wakes_on_emit() {
        let ring = std::sync::Arc::new(EventRing::new(16));
        let reader = {
            let ring = std::sync::Arc::clone(&ring);
            std::thread::spawn(move || ring.since(0, 10, Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(30));
        ring.emit(EventKind::Accepted, 1, "m", 0, "");
        let batch = reader.join().unwrap_or_else(|_| panic!("reader panicked"));
        assert_eq!(batch.events.len(), 1, "long-poll must wake on emit, not time out");
    }

    #[test]
    fn kind_wire_names_round_trip_and_terminality_is_stable() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::parse(kind.as_str()), Some(kind));
        }
        assert!(EventKind::parse("warp").is_none());
        let terminal: Vec<EventKind> =
            EventKind::ALL.into_iter().filter(|k| k.is_terminal()).collect();
        assert_eq!(
            terminal,
            vec![EventKind::Committed, EventKind::Failed, EventKind::Cancelled, EventKind::Shed]
        );
    }
}
