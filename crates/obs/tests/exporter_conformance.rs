//! Conformance tests for the Prometheus text exposition (version
//! 0.0.4) produced by `rh_obs::export`: a strict mini-parser plus a
//! validator enforce the format rules on both golden fixtures and
//! property-generated recorder contents — metric-name charset, one
//! `# HELP`/`# TYPE` per family, no duplicate `(name, labels)` series,
//! escaped label values, and histogram invariants (monotone cumulative
//! buckets, strictly increasing `le` edges ending in `+Inf`, and
//! `+Inf` bucket == `_count`).

use std::collections::HashSet;
use std::time::Duration;

use proptest::prelude::*;
use rh_obs::export::{
    escape_label_value, federate, render_histogram, render_prometheus, sanitize_metric_name,
};
use rh_obs::hist::bucket_of;
use rh_obs::{HistSnapshot, Recorder, Sink as _};

// ---------------------------------------------------------------------------
// Mini exposition parser + validator
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

#[derive(Debug)]
struct Family {
    name: String,
    kind: String,
    samples: Vec<Sample>,
}

fn is_valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parses one label set body (the text between `{` and `}`),
/// unescaping `\\`, `\"`, and `\n` exactly as Prometheus defines them.
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut chars = body.chars();
    loop {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return Err("empty label key".into());
        }
        if chars.next() != Some('"') {
            return Err(format!("label `{key}` value must be double-quoted"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape sequence {other:?}")),
                },
                Some('"') => break,
                Some('\n') | None => return Err("unterminated label value".into()),
                Some(c) => value.push(c),
            }
        }
        out.push((key, value));
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(c) => return Err(format!("unexpected `{c}` after label value")),
        }
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_and_labels, value) =
        line.rsplit_once(' ').ok_or_else(|| "sample line without a value".to_string())?;
    let (name, labels) = match name_and_labels.find('{') {
        Some(idx) => {
            let body = name_and_labels[idx + 1..]
                .strip_suffix('}')
                .ok_or_else(|| "unterminated label set".to_string())?;
            (&name_and_labels[..idx], parse_labels(body)?)
        }
        None => (name_and_labels, Vec::new()),
    };
    let value = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse::<f64>().map_err(|e| format!("unparseable value `{v}`: {e}"))?,
    };
    Ok(Sample { name: name.to_string(), labels, value })
}

/// Parses a full exposition payload into families, rejecting any line
/// that violates the text-format grammar: samples must follow their
/// family's `# TYPE`, every family is announced at most once, and
/// `# HELP` must carry text.
fn parse_exposition(text: &str) -> Result<Vec<Family>, String> {
    let mut families: Vec<Family> = Vec::new();
    let mut helped: HashSet<String> = HashSet::new();
    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) =
                rest.split_once(' ').ok_or_else(|| format!("line {n}: HELP without text"))?;
            if help.trim().is_empty() {
                return Err(format!("line {n}: empty HELP text for `{name}`"));
            }
            if !helped.insert(name.to_string()) {
                return Err(format!("line {n}: duplicate HELP for `{name}`"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) =
                rest.split_once(' ').ok_or_else(|| format!("line {n}: TYPE without a kind"))?;
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(format!("line {n}: unknown metric kind `{kind}`"));
            }
            if families.iter().any(|f| f.name == name) {
                return Err(format!("line {n}: duplicate TYPE for `{name}`"));
            }
            families.push(Family { name: name.to_string(), kind: kind.to_string(), samples: Vec::new() });
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {n}: unrecognized comment form"));
        }
        let sample = parse_sample(line).map_err(|e| format!("line {n}: {e}"))?;
        let fam = families
            .last_mut()
            .ok_or_else(|| format!("line {n}: sample before any # TYPE line"))?;
        let belongs = match fam.kind.as_str() {
            "histogram" => {
                sample.name == format!("{}_bucket", fam.name)
                    || sample.name == format!("{}_sum", fam.name)
                    || sample.name == format!("{}_count", fam.name)
            }
            _ => sample.name == fam.name,
        };
        if !belongs {
            return Err(format!(
                "line {n}: sample `{}` does not belong to the current family `{}`",
                sample.name, fam.name
            ));
        }
        fam.samples.push(sample);
    }
    Ok(families)
}

fn validate_histogram(fam: &Family) -> Result<(), String> {
    let buckets: Vec<&Sample> =
        fam.samples.iter().filter(|s| s.name.ends_with("_bucket")).collect();
    let sums: Vec<&Sample> = fam.samples.iter().filter(|s| s.name.ends_with("_sum")).collect();
    let counts: Vec<&Sample> =
        fam.samples.iter().filter(|s| s.name.ends_with("_count")).collect();
    if buckets.is_empty() {
        return Err(format!("histogram `{}` has no buckets", fam.name));
    }
    let mut prev_le = f64::NEG_INFINITY;
    let mut prev_cum = -1.0f64;
    for b in &buckets {
        let [(key, le_text)] = b.labels.as_slice() else {
            return Err(format!("histogram `{}` bucket must have exactly the le label", fam.name));
        };
        if key != "le" {
            return Err(format!("histogram `{}` bucket labeled `{key}`, not le", fam.name));
        }
        let le = match le_text.as_str() {
            "+Inf" => f64::INFINITY,
            v => v.parse::<f64>().map_err(|e| format!("bad le `{v}`: {e}"))?,
        };
        if le <= prev_le {
            return Err(format!("histogram `{}` le edges not strictly increasing", fam.name));
        }
        if b.value < prev_cum {
            return Err(format!("histogram `{}` bucket counts not cumulative", fam.name));
        }
        prev_le = le;
        prev_cum = b.value;
    }
    if prev_le != f64::INFINITY {
        return Err(format!("histogram `{}` must end with an le=\"+Inf\" bucket", fam.name));
    }
    let [count] = counts.as_slice() else {
        return Err(format!("histogram `{}` needs exactly one _count sample", fam.name));
    };
    if count.value != prev_cum {
        return Err(format!(
            "histogram `{}`: +Inf bucket {} != _count {}",
            fam.name, prev_cum, count.value
        ));
    }
    if sums.len() != 1 {
        return Err(format!("histogram `{}` needs exactly one _sum sample", fam.name));
    }
    Ok(())
}

/// Format rules that span the whole payload: valid names, nonempty
/// families, globally unique `(name, labels)` series, nonnegative
/// counters, well-formed histograms.
fn validate(families: &[Family]) -> Result<(), String> {
    let mut seen: HashSet<String> = HashSet::new();
    for fam in families {
        if !is_valid_metric_name(&fam.name) {
            return Err(format!("invalid family name `{}`", fam.name));
        }
        if fam.samples.is_empty() {
            return Err(format!("family `{}` announced but has no samples", fam.name));
        }
        for s in &fam.samples {
            if !is_valid_metric_name(&s.name) {
                return Err(format!("invalid sample name `{}`", s.name));
            }
            for (k, _) in &s.labels {
                if !is_valid_label_name(k) {
                    return Err(format!("invalid label name `{k}` on `{}`", s.name));
                }
            }
            let key = format!("{}|{:?}", s.name, s.labels);
            if !seen.insert(key) {
                return Err(format!("duplicate series `{}` {:?}", s.name, s.labels));
            }
            if s.value.is_nan() {
                return Err(format!("NaN sample on `{}`", s.name));
            }
        }
        match fam.kind.as_str() {
            "counter" => {
                for s in &fam.samples {
                    if s.value < 0.0 {
                        return Err(format!("negative counter `{}`", s.name));
                    }
                }
            }
            "histogram" => validate_histogram(fam)?,
            _ => {}
        }
    }
    Ok(())
}

fn parse_and_validate(text: &str) -> Result<Vec<Family>, String> {
    let families = parse_exposition(text)?;
    validate(&families)?;
    Ok(families)
}

// ---------------------------------------------------------------------------
// Golden fixtures: exact expected text for known recorder contents
// ---------------------------------------------------------------------------

/// The full recorder-sourced portion of `/metrics` for a small, fixed
/// set of counters/gauges/spans, byte for byte. Counters and gauges
/// render in BTreeMap (name) order; non-finite gauges are skipped;
/// each span yields `_span_count`/`_span_total_us` counters plus a
/// `_span_max_us` gauge. Histograms come from the process-global
/// registry and render after this prefix, so the assertion is on the
/// payload prefix.
#[test]
fn golden_recorder_exposition() {
    let rec = Recorder::new();
    rec.counter("dram.flip", 7);
    rec.counter("softmc.cmd", 3);
    rec.counter("dram.flip", 4);
    rec.gauge("executor.queue_depth", 4.0);
    rec.gauge("bad.gauge", f64::NAN);
    rec.span_end("campaign.module", Duration::from_micros(150), &[]);
    rec.span_end("campaign.module", Duration::from_micros(90), &[]);

    let expected = "\
# HELP dram_flip Monotonic counter `dram.flip`.
# TYPE dram_flip counter
dram_flip 11
# HELP softmc_cmd Monotonic counter `softmc.cmd`.
# TYPE softmc_cmd counter
softmc_cmd 3
# HELP executor_queue_depth Gauge `executor.queue_depth` (last written value).
# TYPE executor_queue_depth gauge
executor_queue_depth 4
# HELP campaign_module_span_count Completed `campaign.module` spans.
# TYPE campaign_module_span_count counter
campaign_module_span_count 2
# HELP campaign_module_span_total_us Total `campaign.module` span time, us.
# TYPE campaign_module_span_total_us counter
campaign_module_span_total_us 240
# HELP campaign_module_span_max_us Longest `campaign.module` span, us.
# TYPE campaign_module_span_max_us gauge
campaign_module_span_max_us 150
";
    let text = render_prometheus(&rec);
    assert!(
        text.starts_with(expected),
        "exposition prefix mismatch:\n--- got ---\n{text}\n--- want prefix ---\n{expected}"
    );
    parse_and_validate(&text).expect("golden payload must be conformant");
}

/// Exact histogram rendering: buckets are cumulative with inclusive
/// log2 upper edges (0, 1, 3, 7, …), empty interior buckets still
/// render, trailing empty buckets are elided, and `+Inf`/`_sum`/
/// `_count` close the family.
#[test]
fn golden_histogram_exposition() {
    let mut h = HistSnapshot::empty("softmc.issue.ns");
    h.buckets[0] = 2;
    h.buckets[1] = 1;
    h.buckets[3] = 4;
    h.count = 7;
    h.sum = 17;
    h.max = 5;
    let mut out = String::new();
    render_histogram(&mut out, &h);
    let expected = "\
# HELP softmc_issue_ns Log2-bucketed histogram `softmc.issue.ns`.
# TYPE softmc_issue_ns histogram
softmc_issue_ns_bucket{le=\"0\"} 2
softmc_issue_ns_bucket{le=\"1\"} 3
softmc_issue_ns_bucket{le=\"3\"} 3
softmc_issue_ns_bucket{le=\"7\"} 7
softmc_issue_ns_bucket{le=\"+Inf\"} 7
softmc_issue_ns_sum 17
softmc_issue_ns_count 7
";
    assert_eq!(out, expected);
    parse_and_validate(&out).expect("golden histogram must be conformant");
}

/// The validator itself must reject malformed payloads — otherwise the
/// property tests below prove nothing.
#[test]
fn validator_rejects_malformed_payloads() {
    let cases: &[(&str, &str)] = &[
        ("x 1\n", "sample before any # TYPE"),
        ("# TYPE x counter\n", "no samples"),
        ("# TYPE x counter\nx 1\n# TYPE x counter\nx 2\n", "duplicate TYPE"),
        ("# TYPE x counter\nx 1\nx 1\n", "duplicate series"),
        ("# TYPE x counter\nx -3\n", "negative counter"),
        ("# TYPE 9x counter\n9x 1\n", "invalid"),
        ("# TYPE x counter\ny 1\n", "does not belong"),
        ("# TYPE x histogram\nx_sum 1\nx_count 1\n", "no buckets"),
        (
            "# TYPE x histogram\nx_bucket{le=\"1\"} 5\nx_bucket{le=\"2\"} 3\n\
             x_bucket{le=\"+Inf\"} 5\nx_sum 9\nx_count 5\n",
            "not cumulative",
        ),
        (
            "# TYPE x histogram\nx_bucket{le=\"1\"} 2\nx_bucket{le=\"+Inf\"} 5\n\
             x_sum 9\nx_count 4\n",
            "+Inf bucket",
        ),
        (
            "# TYPE x histogram\nx_bucket{le=\"2\"} 1\nx_bucket{le=\"1\"} 2\n\
             x_bucket{le=\"+Inf\"} 2\nx_sum 3\nx_count 2\n",
            "strictly increasing",
        ),
        ("# TYPE x histogram\nx_bucket{le=\"1\"} 2\nx_sum 3\nx_count 2\n", "+Inf"),
    ];
    for (payload, needle) in cases {
        let err = parse_and_validate(payload).expect_err(payload);
        assert!(err.contains(needle), "payload {payload:?}: error `{err}` missing `{needle}`");
    }
}

/// Escaped label values round-trip through the parser, including the
/// three escapable characters.
#[test]
fn label_escaping_round_trips_golden() {
    let raw = "path\\to\"dir\"\nline2";
    let line = format!("x{{file=\"{}\"}} 1", escape_label_value(raw));
    let sample = parse_sample(&line).expect("escaped label must parse");
    assert_eq!(sample.labels, vec![("file".to_string(), raw.to_string())]);
}

// ---------------------------------------------------------------------------
// Property tests: arbitrary recorder contents stay conformant
// ---------------------------------------------------------------------------

// Disjoint per-kind name pools (mirroring the convention in
// `rh_obs::names`): a counter and a gauge sharing one sanitized name
// would legitimately violate the one-TYPE-per-family rule, and the
// exporter relies on the names registry keeping kinds disjoint.
const COUNTER_NAMES: [&str; 4] = ["dram.flip", "softmc.cmd", "9 weird counter!", "rate::flips"];
const GAUGE_NAMES: [&str; 3] = ["executor.queue_depth", "campaign.eta_ms", "temp.°celsius"];
const SPAN_NAMES: [&str; 2] = ["campaign.module", "softmc.batch"];

#[derive(Debug, Clone)]
enum Op {
    Counter(usize, u64),
    Gauge(usize, f64),
    Span(usize, u64),
}

struct Ops;

impl Strategy for Ops {
    type Value = Vec<Op>;
    fn sample(&self, rng: &mut TestRng) -> Vec<Op> {
        let n = 1 + rng.below(40) as usize;
        (0..n)
            .map(|_| match rng.below(3) {
                0 => Op::Counter(rng.below(COUNTER_NAMES.len() as u64) as usize, rng.below(1 << 40)),
                1 => {
                    let v = match rng.below(4) {
                        // Non-finite gauges must be skipped, so feed
                        // them in deliberately.
                        0 => f64::NAN,
                        1 => f64::INFINITY,
                        _ => (rng.unit_f64() - 0.5) * 1e9,
                    };
                    Op::Gauge(rng.below(GAUGE_NAMES.len() as u64) as usize, v)
                }
                _ => Op::Span(rng.below(SPAN_NAMES.len() as u64) as usize, rng.below(1 << 30)),
            })
            .collect()
    }
}

/// A histogram snapshot with magnitude-diverse contents, the same way
/// `Histogram::record` fills one (without the global registry).
struct Snapshots;

impl Strategy for Snapshots {
    type Value = HistSnapshot;
    fn sample(&self, rng: &mut TestRng) -> HistSnapshot {
        let mut s = HistSnapshot::empty("prop.conformance.ns");
        let n = rng.below(120);
        for _ in 0..n {
            let width = rng.below(64);
            let v = if width == 0 {
                0
            } else {
                let half = 1u64 << (width - 1);
                half + rng.below(half)
            };
            s.buckets[bucket_of(v)] += 1;
            s.count += 1;
            s.sum = s.sum.saturating_add(v);
            s.max = s.max.max(v);
        }
        s
    }
}

struct LabelText;

impl Strategy for LabelText {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        const POOL: [char; 10] = ['a', 'Z', '0', ' ', '\\', '"', '\n', '=', ',', '}'];
        let n = rng.below(24) as usize;
        (0..n).map(|_| POOL[rng.below(POOL.len() as u64) as usize]).collect()
    }
}

struct RawName;

impl Strategy for RawName {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        const POOL: [char; 12] = ['a', 'B', '_', ':', '0', '9', '.', '-', ' ', '!', '°', 'µ'];
        let n = rng.below(16) as usize;
        (0..n).map(|_| POOL[rng.below(POOL.len() as u64) as usize]).collect()
    }
}

proptest! {
    // Whatever sequence of recorder writes happens, the rendered
    // payload obeys every format rule the validator knows about, and
    // cumulative counter semantics survive the round trip.
    #[test]
    fn recorder_payloads_are_always_conformant(ops in Ops) {
        let rec = Recorder::new();
        let mut expected_counts = std::collections::BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Counter(i, d) => {
                    rec.counter(COUNTER_NAMES[i], d);
                    *expected_counts.entry(COUNTER_NAMES[i]).or_insert(0u64) += d;
                }
                Op::Gauge(i, v) => rec.gauge(GAUGE_NAMES[i], v),
                Op::Span(i, us) => {
                    rec.span_end(SPAN_NAMES[i], Duration::from_micros(us), &[]);
                }
            }
        }
        let text = render_prometheus(&rec);
        let families = parse_and_validate(&text);
        prop_assert!(families.is_ok(), "{:?}:\n{text}", families.as_ref().err());
        let families = families.unwrap_or_default();
        // Counter totals survive rendering + parsing exactly.
        for (name, total) in &expected_counts {
            let m = sanitize_metric_name(name);
            let fam = families.iter().find(|f| f.name == m);
            prop_assert!(fam.is_some(), "counter family `{m}` missing");
            if let Some(fam) = fam {
                prop_assert_eq!(fam.kind.as_str(), "counter");
                prop_assert_eq!(fam.samples[0].value, *total as f64);
            }
        }
    }

    // Any reachable histogram snapshot renders to a conformant
    // histogram family whose +Inf bucket, _count, and _sum match the
    // snapshot exactly.
    #[test]
    fn histogram_exposition_is_always_conformant(snap in Snapshots) {
        let mut out = String::new();
        render_histogram(&mut out, &snap);
        let families = parse_and_validate(&out);
        prop_assert!(families.is_ok(), "{:?}:\n{out}", families.as_ref().err());
        let families = families.unwrap_or_default();
        prop_assert_eq!(families.len(), 1);
        let fam = &families[0];
        let count = fam.samples.iter().find(|s| s.name.ends_with("_count"));
        prop_assert_eq!(count.map(|s| s.value), Some(snap.count as f64));
        let sum = fam.samples.iter().find(|s| s.name.ends_with("_sum"));
        prop_assert_eq!(sum.map(|s| s.value), Some(snap.sum as f64));
        // Non-cumulative bucket totals must reproduce `count`: the
        // +Inf sample covers everything above the last rendered edge.
        let finite: Vec<f64> = fam
            .samples
            .iter()
            .filter(|s| s.name.ends_with("_bucket") && s.labels[0].1 != "+Inf")
            .map(|s| s.value)
            .collect();
        if let Some(&last) = finite.last() {
            prop_assert!(last <= snap.count as f64);
        }
    }

    // Label escaping is lossless for arbitrary text, even text
    // containing the label-set metacharacters themselves.
    #[test]
    fn label_values_round_trip(raw in LabelText) {
        let line = format!("x{{v=\"{}\"}} 1", escape_label_value(&raw));
        let parsed = parse_sample(&line);
        prop_assert!(parsed.is_ok(), "{line:?}: {:?}", parsed.as_ref().err());
        if let Ok(sample) = parsed {
            prop_assert_eq!(sample.labels[0].1.as_str(), raw.as_str());
        }
        // The escaped text itself never contains a raw newline or an
        // unescaped quote, so it cannot break out of the sample line.
        prop_assert!(!escape_label_value(&raw).contains('\n'));
    }

    // Sanitized names always land in the legal Prometheus charset.
    #[test]
    fn sanitized_names_are_always_legal(raw in RawName) {
        prop_assert!(is_valid_metric_name(&sanitize_metric_name(&raw)));
    }
}

// ---------------------------------------------------------------------------
// Fleet federation: golden exposition + merge properties
// ---------------------------------------------------------------------------

/// The federated exposition for one coordinator + one worker, byte
/// for byte: the coordinator's own scalar stays unlabeled, the
/// worker's copy gains `worker="addr"`, aligned log2 histogram buckets
/// are de-cumulated, summed element-wise, and re-rendered cumulative
/// as one `le`-only family, and worker-only families federate too.
#[test]
fn golden_fleet_federated_exposition() {
    let own = "\
# HELP dram_flip Monotonic counter `dram.flip`.
# TYPE dram_flip counter
dram_flip 5
# HELP softmc_issue_ns Log2-bucketed histogram `softmc.issue.ns`.
# TYPE softmc_issue_ns histogram
softmc_issue_ns_bucket{le=\"0\"} 2
softmc_issue_ns_bucket{le=\"1\"} 3
softmc_issue_ns_bucket{le=\"+Inf\"} 3
softmc_issue_ns_sum 1
softmc_issue_ns_count 3
";
    let worker = "\
# TYPE dram_flip counter
dram_flip 7
# TYPE softmc_issue_ns histogram
softmc_issue_ns_bucket{le=\"0\"} 1
softmc_issue_ns_bucket{le=\"3\"} 2
softmc_issue_ns_bucket{le=\"+Inf\"} 2
softmc_issue_ns_sum 4
softmc_issue_ns_count 2
# TYPE worker_jobs_completed counter
worker_jobs_completed 3
";
    let text = federate(own, &[("127.0.0.1:7001".to_string(), worker.to_string())]);
    let expected = "\
# HELP dram_flip Fleet-federated counter `dram_flip`.
# TYPE dram_flip counter
dram_flip 5
dram_flip{worker=\"127.0.0.1:7001\"} 7
# HELP softmc_issue_ns Fleet-federated log2 histogram `softmc_issue_ns`.
# TYPE softmc_issue_ns histogram
softmc_issue_ns_bucket{le=\"0\"} 3
softmc_issue_ns_bucket{le=\"1\"} 4
softmc_issue_ns_bucket{le=\"3\"} 5
softmc_issue_ns_bucket{le=\"+Inf\"} 5
softmc_issue_ns_sum 5
softmc_issue_ns_count 5
# HELP worker_jobs_completed Fleet-federated counter `worker_jobs_completed`.
# TYPE worker_jobs_completed counter
worker_jobs_completed{worker=\"127.0.0.1:7001\"} 3
";
    assert_eq!(text, expected);
    parse_and_validate(&text).expect("golden federated payload must be conformant");
}

/// One to three worker histogram sources for the federation property.
struct WorkerSnapshots;

impl Strategy for WorkerSnapshots {
    type Value = Vec<HistSnapshot>;
    fn sample(&self, rng: &mut TestRng) -> Vec<HistSnapshot> {
        let n = 1 + rng.below(3) as usize;
        (0..n).map(|_| Snapshots.sample(rng)).collect()
    }
}

proptest! {
    // Whatever each source's histogram holds, the federated merge is
    // conformant under the same validator as a single-process payload
    // (monotone cumulative buckets, +Inf == _count) and preserves the
    // fleet-wide totals exactly: _count and _sum are the sums of the
    // sources' — no observation is lost or double-counted by the
    // de-cumulate/sum/re-render cycle.
    #[test]
    fn federated_histograms_stay_conformant_and_preserve_totals(
        own_snap in Snapshots,
        worker_snaps in WorkerSnapshots,
    ) {
        let mut own = String::new();
        render_histogram(&mut own, &own_snap);
        let workers: Vec<(String, String)> = worker_snaps
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut text = String::new();
                render_histogram(&mut text, s);
                (format!("127.0.0.1:700{i}"), text)
            })
            .collect();
        let text = federate(&own, &workers);
        let families = parse_and_validate(&text);
        prop_assert!(families.is_ok(), "{:?}:\n{text}", families.as_ref().err());
        let families = families.unwrap_or_default();
        prop_assert_eq!(families.len(), 1, "one le-only family, not per-worker shards");
        let fam = &families[0];
        // The merge saturates rather than wrapping, so fold the same
        // way (per-source sums can sit near u64::MAX already).
        let expect_count: u64 =
            worker_snaps.iter().fold(own_snap.count, |a, s| a.saturating_add(s.count));
        let expect_sum: u64 =
            worker_snaps.iter().fold(own_snap.sum, |a, s| a.saturating_add(s.sum));
        let count = fam.samples.iter().find(|s| s.name.ends_with("_count"));
        prop_assert_eq!(count.map(|s| s.value), Some(expect_count as f64));
        let sum = fam.samples.iter().find(|s| s.name.ends_with("_sum"));
        prop_assert_eq!(sum.map(|s| s.value), Some(expect_sum as f64));
        for s in fam.samples.iter().filter(|s| s.name.ends_with("_bucket")) {
            prop_assert_eq!(s.labels.len(), 1, "bucket samples carry only le");
        }
    }
}
