//! Adversarial fuzz suite for the event-stream codec
//! (`rh_obs::stream`).
//!
//! The coordinator parses `/events` bodies received over a
//! fault-injected link and journal files that may have been cut
//! mid-record by a crash, so the parse side is fuzzed under the same
//! absolute contract as the HTTP client: [`parse_events`] never
//! panics, whatever the bytes. The structured properties pin the
//! useful directions: well-formed batches — including seq gaps from
//! ring overflow and hostile escape sequences — round-trip exactly;
//! truncation yields a clean prefix plus at most one skipped line;
//! and duplicated chunks (an at-least-once redelivery) never
//! double-count once [`EventDedup`] has seen them.

use proptest::prelude::*;
use rh_obs::stream::{parse_events, EventDedup, EventKind, EventRing, JobEvent};

/// Hostile text for `module` / `detail` / `worker`: quotes,
/// backslashes, control characters, and multibyte UTF-8.
fn hostile_text(rng: &mut TestRng) -> String {
    const PALETTE: [char; 12] =
        ['a', 'Z', '9', '"', '\\', '\n', '\t', '\r', '\u{1}', 'é', '\u{7f}', ' '];
    let len = rng.below(12) as usize;
    (0..len).map(|_| PALETTE[rng.below(PALETTE.len() as u64) as usize]).collect()
}

/// A batch of events with strictly monotone (but gappy) seqs — the
/// shape a consumer sees after ring overflow evicted some events.
struct Events;

impl Strategy for Events {
    type Value = Vec<JobEvent>;
    fn sample(&self, rng: &mut TestRng) -> Vec<JobEvent> {
        let n = rng.below(16) as usize;
        let mut seq = 0u64;
        (0..n)
            .map(|_| {
                seq += 1 + rng.below(5); // gap of up to 4
                JobEvent {
                    seq,
                    lease_id: rng.below(4),
                    kind: EventKind::ALL[rng.below(EventKind::ALL.len() as u64) as usize],
                    module: hostile_text(rng),
                    ts_us: rng.below(1_000_000_000),
                    value: rng.below(1 << 40),
                    detail: hostile_text(rng),
                    worker: hostile_text(rng),
                }
            })
            .collect()
    }
}

fn events() -> impl Strategy<Value = Vec<JobEvent>> {
    Events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // The absolute contract: arbitrary byte soup (made lossily UTF-8,
    // as a journal reader would) never panics the parser, and feeding
    // whatever it produced through dedup never panics either.
    #[test]
    fn arbitrary_bytes_never_panic(raw in prop::collection::vec(any::<u8>(), 0..2048)) {
        let text = String::from_utf8_lossy(&raw);
        let parsed = parse_events(&text);
        let mut dedup = EventDedup::new();
        for ev in &parsed.events {
            let _ = dedup.admit(ev);
        }
    }

    // Well-formed batches round-trip exactly — seq gaps, hostile
    // escapes, and all — with nothing skipped.
    #[test]
    fn batches_with_gaps_round_trip_exactly(evs in events()) {
        let text = EventRing::to_jsonl(&evs);
        let parsed = parse_events(&text);
        prop_assert_eq!(parsed.skipped, 0, "round trip must not skip");
        prop_assert_eq!(parsed.events, evs);
    }

    // Cutting a batch anywhere (on a char boundary, as &str demands)
    // never panics and yields a clean prefix: every decoded event
    // matches the original order, and at most the cut line is lost.
    #[test]
    fn truncation_yields_a_prefix_not_a_panic(evs in events(), cut_seed in any::<u64>()) {
        let text = EventRing::to_jsonl(&evs);
        let mut cut = if text.is_empty() { 0 } else { (cut_seed % text.len() as u64) as usize };
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        let parsed = parse_events(&text[..cut]);
        prop_assert!(parsed.skipped <= 1, "a cut costs at most the cut line");
        prop_assert!(parsed.events.len() <= evs.len());
        prop_assert_eq!(&parsed.events[..], &evs[..parsed.events.len()]);
    }

    // An at-least-once redelivery — the same chunk presented several
    // times, as a resumed consumer does after a timeout — admits each
    // (lease_id, seq) exactly once, however often it is replayed.
    #[test]
    fn duplicated_chunks_never_double_count(evs in events(), replays in 2u8..5) {
        let chunk = EventRing::to_jsonl(&evs);
        let mut text = String::new();
        for _ in 0..replays {
            text.push_str(&chunk);
        }
        let parsed = parse_events(&text);
        prop_assert_eq!(parsed.skipped, 0);
        prop_assert_eq!(parsed.events.len(), evs.len() * replays as usize);
        let mut dedup = EventDedup::new();
        let admitted = parsed.events.iter().filter(|ev| dedup.admit(ev)).count();
        prop_assert_eq!(admitted, evs.len(), "dedup must collapse replays exactly");
        prop_assert_eq!(dedup.len(), evs.len());
    }

    // Garbage lines interleaved between valid records are counted and
    // skipped without disturbing the valid ones around them.
    #[test]
    fn interleaved_garbage_is_skipped_not_fatal(
        evs in events(),
        junk in prop::collection::vec(32u8..127u8, 1..40),
    ) {
        let junk_line: String = junk.iter().map(|&b| b as char).collect();
        // A junk line that happens to parse as an event would perturb
        // the count; printable ASCII without '{' cannot.
        let junk_line = junk_line.replace('{', "(");
        let mut text = String::new();
        for ev in &evs {
            text.push_str(&junk_line);
            text.push('\n');
            text.push_str(&ev.to_json_line());
        }
        let parsed = parse_events(&text);
        prop_assert_eq!(parsed.events, evs);
        prop_assert_eq!(parsed.skipped, u64::try_from(evs.len()).unwrap_or(0));
    }
}
