//! Property-based tests tying the log-bucketed observability
//! histograms to the exact statistics in `rh-stats`: every quantile the
//! cheap histogram reports must agree with the exact nearest-rank
//! quantile to within one power-of-2 bucket's relative error, and
//! snapshot merging must behave like a commutative monoid.

use proptest::prelude::*;
use rh_obs::hist::{bucket_hi, bucket_of};
use rh_obs::HistSnapshot;
use rh_stats::Ecdf;

/// Builds a snapshot directly from samples, the same way `record` does
/// (bucket + count + sum + max), without touching the global registry.
fn snapshot_of(xs: &[u64]) -> HistSnapshot {
    let mut s = HistSnapshot::empty("prop.test");
    for &x in xs {
        s.buckets[bucket_of(x)] += 1;
        s.count += 1;
        s.sum = s.sum.saturating_add(x);
        s.max = s.max.max(x);
    }
    s
}

/// One magnitude-diverse sample: a uniformly chosen bit width in
/// `0..=53`, then a uniform value of that width. Staying below 2^53
/// keeps the f64 round-trip through `rh_stats::Ecdf` exact, and the
/// log-uniform spread exercises every histogram bucket in range.
struct Magnitudes;

impl Strategy for Magnitudes {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        let width = rng.below(54);
        if width == 0 {
            0
        } else {
            let half = 1u64 << (width - 1);
            half + rng.below(half)
        }
    }
}

fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(Magnitudes, 1..200)
}

proptest! {
    // The histogram quantile brackets the exact nearest-rank quantile
    // from below by at most one bucket: `exact <= approx <= 2*exact`
    // (and `approx == 0` exactly when `exact == 0`). `Ecdf::quantile`
    // uses the same nearest-rank rule as `HistSnapshot::quantile`, so
    // the only error is the bucketing itself.
    #[test]
    fn quantiles_agree_with_exact_within_one_bucket(xs in samples(), q in 0.01f64..=1.0) {
        let snap = snapshot_of(&xs);
        let approx = snap.quantile(q).expect("non-empty histogram");

        let exact_f = Ecdf::new(xs.iter().map(|&x| x as f64).collect())
            .quantile(q)
            .expect("non-empty sample");
        let exact = exact_f as u64;
        prop_assert_eq!(exact as f64, exact_f, "u64 < 2^53 must round-trip");

        if exact == 0 {
            prop_assert_eq!(approx, 0);
        } else {
            // The exact value falls in bucket i covering [2^(i-1), 2^i);
            // the histogram answers with that bucket's top (clamped by
            // the observed max), so it never undershoots and at most
            // doubles.
            prop_assert!(approx >= exact, "approx {approx} < exact {exact}");
            prop_assert!(approx <= exact.saturating_mul(2), "approx {approx} > 2*exact {exact}");
        }
    }

    // The reported quantile is always bounded by the true extremes.
    #[test]
    fn quantiles_never_exceed_the_observed_max(xs in samples(), q in 0.01f64..=1.0) {
        let snap = snapshot_of(&xs);
        let approx = snap.quantile(q).expect("non-empty histogram");
        let max = xs.iter().copied().max().unwrap_or(0);
        prop_assert!(approx <= max);
    }

    // Merging snapshots is commutative and associative, with the empty
    // snapshot as identity — so sharded and cross-thread merges give
    // one well-defined answer regardless of order.
    #[test]
    fn merge_is_a_commutative_monoid(a in samples(), b in samples(), c in samples()) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        // Commutativity: a+b == b+a.
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        // Associativity: (a+b)+c == a+(b+c).
        let mut ab_c = ab.clone();
        ab_c.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut a_bc = sa.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Identity: a+0 == a.
        let mut a0 = sa.clone();
        a0.merge(&HistSnapshot::empty("prop.test"));
        prop_assert_eq!(&a0, &sa);

        // The merge is lossless for count/sum and order statistics of
        // the union.
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(ab_c.count, all.len() as u64);
        prop_assert_eq!(ab_c.max, all.iter().copied().max().unwrap_or(0));
    }

    // Bucketing invariants the quantile bound relies on: every value
    // lands in a bucket whose top is >= the value and < 2x the value.
    #[test]
    fn bucket_tops_bracket_their_values(v in any::<u64>()) {
        let i = bucket_of(v);
        prop_assert!(bucket_hi(i) >= v);
        if v > 0 {
            // In u128 so the bound holds for v near u64::MAX too.
            prop_assert!(u128::from(bucket_hi(i)) < 2 * u128::from(v));
            prop_assert!(i == 0 || bucket_hi(i - 1) < v);
        }
    }
}
