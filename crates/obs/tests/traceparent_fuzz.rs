//! Adversarial fuzz suite for the W3C-style traceparent codec.
//!
//! The coordinator writes this header and workers parse it back from
//! network bytes that an armed `NetFaultPlan` deliberately mangles:
//! flipped bytes (corrupt-status class) and mid-value cuts
//! (truncation class). The contract under fuzz is narrow and
//! absolute: `parse_traceparent` returns `Some` or `None`, never
//! panics — and `parse(format(ctx))` is the *only* round-trip, so a
//! corrupted header can never smuggle a different trace identity into
//! a worker's span tree.

use proptest::prelude::*;
use rh_obs::trace::{format_traceparent, parse_traceparent, TraceContext};

/// Arbitrary nonzero on-wire IDs (zero IDs are invalid by design and
/// covered by their own property below).
fn nonzero_ctx(hi: u64, lo: u64, span: u64) -> TraceContext {
    TraceContext {
        trace_id: (u128::from(hi) << 64) | u128::from(lo.max(1)),
        span_id: span.max(1),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // The absolute contract: arbitrary byte soup (lossily decoded,
    // exactly as the HTTP header path does) must never panic.
    #[test]
    fn arbitrary_bytes_never_panic(raw in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = parse_traceparent(&String::from_utf8_lossy(&raw));
    }

    // format → parse is the identity for every representable context.
    #[test]
    fn round_trip_is_exact(hi in any::<u64>(), lo in any::<u64>(), span in any::<u64>()) {
        let ctx = nonzero_ctx(hi, lo, span);
        let wire = format_traceparent(ctx);
        prop_assert_eq!(wire.len(), 55);
        prop_assert_eq!(parse_traceparent(&wire), Some(ctx));
    }

    // Zero IDs never survive parsing, whichever half is zeroed.
    #[test]
    fn zero_ids_are_rejected(span in any::<u64>(), zero_trace in any::<bool>()) {
        let ctx = if zero_trace {
            TraceContext { trace_id: 0, span_id: span.max(1) }
        } else {
            TraceContext { trace_id: u128::from(span.max(1)), span_id: 0 }
        };
        prop_assert_eq!(parse_traceparent(&format_traceparent(ctx)), None);
    }

    // faultnet truncation class: any strict prefix of a valid header
    // is rejected (the 55-byte length gate leaves no partial parse).
    #[test]
    fn truncated_headers_are_rejected(
        hi in any::<u64>(), lo in any::<u64>(), span in any::<u64>(),
        cut in 0usize..55,
    ) {
        let wire = format_traceparent(nonzero_ctx(hi, lo, span));
        prop_assert_eq!(parse_traceparent(&wire[..cut]), None);
    }

    // faultnet corrupt-status class: flipping any single byte of a
    // valid header either yields None or — when the flip lands inside
    // an ID and happens to produce another lowercase hex digit — a
    // context that is NOT the original. Corruption can never alias
    // back to the identity it corrupted.
    #[test]
    fn corrupted_headers_never_alias_the_original(
        hi in any::<u64>(), lo in any::<u64>(), span in any::<u64>(),
        pos in 0usize..55, flip in 1u8..=255,
    ) {
        let ctx = nonzero_ctx(hi, lo, span);
        let mut raw = format_traceparent(ctx).into_bytes();
        raw[pos] ^= flip;
        let mangled = String::from_utf8_lossy(&raw).into_owned();
        match parse_traceparent(&mangled) {
            None => {}
            // The flags field (bytes 53..55) carries no identity: a
            // flip there may parse and legitimately keep the context.
            Some(_) if pos >= 53 => {}
            Some(got) => prop_assert_ne!(got, ctx),
        }
    }

    // Uppercase hex is outside the W3C grammar: case-folding a valid
    // header must not reintroduce a parse.
    #[test]
    fn uppercase_headers_are_rejected(hi in any::<u64>(), lo in any::<u64>(), span in any::<u64>()) {
        let wire = format_traceparent(nonzero_ctx(hi, lo, span));
        let upper = wire.to_ascii_uppercase();
        if upper != wire {
            prop_assert_eq!(parse_traceparent(&upper), None);
        }
    }
}
