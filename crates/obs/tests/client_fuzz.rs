//! Adversarial fuzz suite for `rh_obs::client::parse_response`.
//!
//! The fleet client parses bytes received from the network, and under
//! an armed `NetFaultPlan` those bytes are *deliberately* hostile:
//! truncated status lines, garbage `Content-Length`, duplicated
//! replies, oversized heads. The contract under fuzz is narrow and
//! absolute — `parse_response` returns `Ok` or `Err`; it never
//! panics, never indexes out of bounds, and never loops beyond the
//! input length. The structured properties then pin the useful
//! direction: well-formed responses round-trip exactly, and a valid
//! `Content-Length` shields the body from any trailing junk.

use proptest::prelude::*;
use rh_obs::client::parse_response;

/// Printable-ASCII body text (valid UTF-8, no CR/LF surprises).
struct BodyText;

impl Strategy for BodyText {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let len = rng.below(200) as usize;
        (0..len).map(|_| (32 + rng.below(95)) as u8 as char).collect()
    }
}

fn body_text() -> impl Strategy<Value = String> {
    BodyText
}

/// A fully well-formed `Connection: close` response.
fn wire_response(status: u16, body: &str, extra_header: Option<&str>) -> Vec<u8> {
    let extra = extra_header.map_or(String::new(), |h| format!("{h}\r\n"));
    format!(
        "HTTP/1.1 {status} Reason\r\nContent-Length: {}\r\n{extra}\r\n{body}",
        body.len()
    )
    .into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // The absolute contract: arbitrary byte soup must never panic or
    // hang, whatever it parses to.
    #[test]
    fn arbitrary_bytes_never_panic(raw in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = parse_response(&raw);
    }

    // Byte soup that at least contains a header terminator — deeper
    // into the parser, same contract.
    #[test]
    fn terminated_garbage_never_panics(
        head in prop::collection::vec(any::<u8>(), 0..512),
        body in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut raw = head;
        raw.extend_from_slice(b"\r\n\r\n");
        raw.extend_from_slice(&body);
        let _ = parse_response(&raw);
    }

    // Well-formed responses round-trip exactly.
    #[test]
    fn valid_responses_round_trip(status in 100u16..=599, body in body_text()) {
        let parsed = parse_response(&wire_response(status, &body, None));
        let response = match parsed {
            Ok(r) => r,
            Err(e) => return Err(TestCaseError::Fail(format!("valid response rejected: {e}"))),
        };
        prop_assert_eq!(response.status, status);
        prop_assert_eq!(response.body, body);
        prop_assert!(response.retry_after.is_none());
    }

    // A valid Content-Length shields the body from any trailing junk:
    // duplicated replies and appended garbage parse identically to the
    // clean response.
    #[test]
    fn trailing_junk_beyond_content_length_is_ignored(
        status in 100u16..=599,
        body in body_text(),
        junk in prop::collection::vec(any::<u8>(), 1..600),
    ) {
        let clean = wire_response(status, &body, None);
        let mut noisy = clean.clone();
        noisy.extend_from_slice(&junk);
        let a = parse_response(&clean);
        let b = parse_response(&noisy);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.status, b.status);
                prop_assert_eq!(a.body, b.body);
            }
            (a, b) => return Err(TestCaseError::Fail(format!(
                "clean {:?} vs noisy {:?} disagree",
                a.map(|r| r.status),
                b.map(|r| r.status),
            ))),
        }
    }

    // Cutting a valid response anywhere must never panic; a cut that
    // lands strictly inside the declared body must be rejected (that's
    // the truncation fault the client depends on detecting).
    #[test]
    fn truncation_is_detected_not_panicked(
        status in 100u16..=599,
        body in body_text(),
        cut_seed in any::<u64>(),
    ) {
        let full = wire_response(status, &body, None);
        let cut = (cut_seed % full.len() as u64) as usize;
        let result = parse_response(&full[..cut]);
        let head_len = full.len() - body.len();
        if cut >= head_len && cut < full.len() && !body.is_empty() {
            prop_assert!(result.is_err(), "body cut at {cut}/{} parsed Ok", full.len());
        }
    }

    // Garbage where the status line should be must be an error, not a
    // status of 0 or a slice panic.
    #[test]
    fn garbage_status_lines_are_rejected(
        line in prop::collection::vec(32u8..127u8, 0..60),
        body in body_text(),
    ) {
        let mut raw: Vec<u8> = line.clone();
        raw.extend_from_slice(b"\r\n\r\n");
        raw.extend_from_slice(body.as_bytes());
        let text: String = line.iter().map(|&b| b as char).collect();
        let plausible = text.starts_with("HTTP/");
        if !plausible {
            prop_assert!(parse_response(&raw).is_err(), "accepted status line {text:?}");
        }
    }

    // Non-numeric Content-Length values must be rejected outright.
    #[test]
    fn garbage_content_length_is_rejected(
        status in 100u16..=599,
        garbage in prop::collection::vec(97u8..123u8, 1..20),
        body in body_text(),
    ) {
        let text: String = garbage.iter().map(|&b| b as char).collect();
        let raw = format!(
            "HTTP/1.1 {status} Reason\r\nContent-Length: {text}\r\n\r\n{body}"
        );
        prop_assert!(parse_response(raw.as_bytes()).is_err());
    }

    // Heads that never terminate within the cap are rejected in
    // bounded time, however large the input.
    #[test]
    fn oversized_heads_are_rejected(filler in 33u8..127u8, extra in 0usize..4096) {
        let mut raw = b"HTTP/1.1 200 OK\r\n".to_vec();
        raw.extend(std::iter::repeat_n(filler, 70 * 1024 + extra));
        prop_assert!(parse_response(&raw).is_err());
    }
}

#[test]
fn retry_after_survives_hardening() {
    let raw = b"HTTP/1.1 503 Busy\r\nContent-Length: 2\r\nRetry-After: 9\r\n\r\nno";
    let response = parse_response(raw).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(response.status, 503);
    assert_eq!(response.retry_after, Some(std::time::Duration::from_secs(9)));
}

#[test]
fn conflicting_content_lengths_are_rejected() {
    let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nhi!";
    assert!(parse_response(raw).is_err(), "smuggled conflicting lengths must be rejected");
}
