//! Property-based tests for the DRAM device model.

use proptest::prelude::*;
use rh_dram::{
    BankId, Command, DataPattern, DramModule, Manufacturer, ModuleConfig, PatternKind,
    RowAddr, RowMapping, TimedCommand,
};

fn any_mfr() -> impl Strategy<Value = Manufacturer> {
    prop::sample::select(Manufacturer::ALL.to_vec())
}

fn any_pattern() -> impl Strategy<Value = PatternKind> {
    prop::sample::select(PatternKind::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mapping_bijective(mfr in any_mfr(), row in 0u32..1_000_000) {
        let m = RowMapping::for_manufacturer(mfr);
        let l = RowAddr(row);
        prop_assert_eq!(m.physical_to_logical(m.logical_to_physical(l)), l);
    }

    #[test]
    fn mapping_preserves_row_space(mfr in any_mfr(), row in 0u32..65_536) {
        let m = RowMapping::for_manufacturer(mfr);
        let p = m.logical_to_physical(RowAddr(row));
        // Conditional XOR schemes only permute within small blocks.
        prop_assert!(p.0 < 65_536);
    }

    #[test]
    fn write_read_roundtrip(mfr in any_mfr(), bank in 0u32..8, row in 0u32..32_768, byte in any::<u8>()) {
        let mut m = DramModule::new(ModuleConfig::ddr4(mfr));
        let data = vec![byte; m.row_bytes()];
        m.write_row_direct(BankId(bank), RowAddr(row), &data).unwrap();
        prop_assert_eq!(m.read_row_direct(BankId(bank), RowAddr(row)).unwrap(), data);
    }

    #[test]
    fn distinct_rows_do_not_alias(mfr in any_mfr(), r1 in 0u32..4096, r2 in 0u32..4096) {
        prop_assume!(r1 != r2);
        let mut m = DramModule::new(ModuleConfig::ddr4(mfr));
        let d1 = vec![0x11u8; m.row_bytes()];
        let d2 = vec![0x22u8; m.row_bytes()];
        m.write_row_direct(BankId(0), RowAddr(r1), &d1).unwrap();
        m.write_row_direct(BankId(0), RowAddr(r2), &d2).unwrap();
        prop_assert_eq!(m.read_row_direct(BankId(0), RowAddr(r1)).unwrap(), d1);
        prop_assert_eq!(m.read_row_direct(BankId(0), RowAddr(r2)).unwrap(), d2);
    }

    #[test]
    fn pattern_fill_length_and_determinism(kind in any_pattern(), row in 0u32..10_000, d in -8i64..=8, len in 1usize..4096) {
        let p = DataPattern::new(kind, 1234);
        let a = p.row_fill(RowAddr(row), d, len);
        let b = p.row_fill(RowAddr(row), d, len);
        prop_assert_eq!(a.len(), len);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn command_hammer_loop_counts_activations(n in 1u64..50) {
        let mut m = DramModule::new(ModuleConfig::ddr4(Manufacturer::D));
        let t = m.config().timing;
        let b = BankId(0);
        let mut at = 0;
        for _ in 0..n {
            m.issue(&TimedCommand { at, cmd: Command::Act { bank: b, row: RowAddr(10) } }).unwrap();
            at += t.t_ras;
            m.issue(&TimedCommand { at, cmd: Command::Pre { bank: b } }).unwrap();
            at += t.t_rp;
        }
        // Direct mapping for Mfr. D: logical row 10 is physical row 10.
        prop_assert_eq!(m.bank(b).stats().count(RowAddr(10)), n);
    }

    #[test]
    fn quantize_idempotent(t_ps in 0u64..10_000_000) {
        let t = rh_dram::TimingParams::ddr4_2400();
        let q = t.quantize(t_ps);
        prop_assert_eq!(t.quantize(q), q);
        prop_assert!(q >= t_ps);
        prop_assert!(q - t_ps < t.clock);
    }
}
