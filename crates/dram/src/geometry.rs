//! DRAM geometry: address-space newtypes, chip organizations, and the
//! derived per-module layout (Fig. 1 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A bank index within a chip/module (banks operate in lock-step across
/// the chips of a rank, so a module-level bank maps to the same bank in
/// every chip).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BankId(pub u32);

/// A row address within a bank. Depending on context this is either a
/// *logical* (memory-controller-visible) or *physical* (in-DRAM) row;
/// conversion goes through [`crate::mapping::RowMapping`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RowAddr(pub u32);

impl fmt::Display for RowAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl RowAddr {
    /// The row at signed offset `d` from this one, saturating at zero.
    ///
    /// ```
    /// use rh_dram::RowAddr;
    /// assert_eq!(RowAddr(10).offset(-2), RowAddr(8));
    /// assert_eq!(RowAddr(1).offset(-5), RowAddr(0));
    /// ```
    pub fn offset(self, d: i64) -> RowAddr {
        RowAddr((self.0 as i64 + d).max(0) as u32)
    }
}

/// A chip index within a rank (0-based, ordered by data-byte lane).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ChipId(pub u8);

/// A subarray index within a bank (the paper assumes 512-row
/// subarrays, §7.3).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SubarrayId(pub u32);

/// DRAM chip data-bus width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChipOrg {
    /// 4-bit wide chips (16 per 64-bit rank).
    X4,
    /// 8-bit wide chips (8 per 64-bit rank).
    X8,
    /// 16-bit wide chips (4 per 64-bit rank).
    X16,
}

impl ChipOrg {
    /// Data-bus bits of one chip.
    pub fn width_bits(self) -> u32 {
        match self {
            ChipOrg::X4 => 4,
            ChipOrg::X8 => 8,
            ChipOrg::X16 => 16,
        }
    }

    /// Number of chips forming a 64-bit rank.
    pub fn chips_per_rank(self) -> u32 {
        64 / self.width_bits()
    }
}

impl fmt::Display for ChipOrg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.width_bits())
    }
}

/// DRAM chip storage density.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Density {
    /// 4 Gbit chips.
    Gb4,
    /// 8 Gbit chips.
    Gb8,
}

impl Density {
    /// Chip capacity in bits.
    pub fn bits(self) -> u64 {
        match self {
            Density::Gb4 => 4 << 30,
            Density::Gb8 => 8 << 30,
        }
    }
}

impl fmt::Display for Density {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Density::Gb4 => write!(f, "4Gb"),
            Density::Gb8 => write!(f, "8Gb"),
        }
    }
}

/// The four anonymized DRAM manufacturers of the paper (Table 4 maps
/// them to Micron, Samsung, SK Hynix, and Nanya).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Manufacturer {
    /// Mfr. A (Micron in Table 4).
    A,
    /// Mfr. B (Samsung in Table 4).
    B,
    /// Mfr. C (SK Hynix in Table 4).
    C,
    /// Mfr. D (Nanya in Table 4).
    D,
}

impl Manufacturer {
    /// All four manufacturers in paper order.
    pub const ALL: [Manufacturer; 4] = [Self::A, Self::B, Self::C, Self::D];

    /// The real-world vendor name disclosed in Table 4.
    pub fn vendor_name(self) -> &'static str {
        match self {
            Self::A => "Micron",
            Self::B => "Samsung",
            Self::C => "SK Hynix",
            Self::D => "Nanya",
        }
    }

    /// Stable small index (0..4) for seeding and array lookups.
    pub fn index(self) -> usize {
        match self {
            Self::A => 0,
            Self::B => 1,
            Self::C => 2,
            Self::D => 3,
        }
    }
}

impl fmt::Display for Manufacturer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::A => write!(f, "Mfr. A"),
            Self::B => write!(f, "Mfr. B"),
            Self::C => write!(f, "Mfr. C"),
            Self::D => write!(f, "Mfr. D"),
        }
    }
}

/// The geometry of one DRAM module (a rank of lock-step chips).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramGeometry {
    /// Banks per chip (lock-step across the rank).
    pub banks: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Column addresses per row (one column = one 64-bit beat across
    /// the rank).
    pub columns: u32,
    /// Chip organization.
    pub org: ChipOrg,
    /// Chip density.
    pub density: Density,
    /// Rows per subarray (the paper conservatively assumes 512).
    pub subarray_rows: u32,
}

impl DramGeometry {
    /// Geometry of the DDR4 8 Gb x8 configuration (Mfrs. A and D in
    /// Table 2).
    pub fn ddr4_8gb_x8() -> Self {
        Self {
            banks: 16,
            rows_per_bank: 65_536,
            columns: 1024,
            org: ChipOrg::X8,
            density: Density::Gb8,
            subarray_rows: 512,
        }
    }

    /// Geometry of the DDR4 4 Gb x8 configuration (Mfrs. B and C).
    pub fn ddr4_4gb_x8() -> Self {
        Self {
            banks: 16,
            rows_per_bank: 32_768,
            columns: 1024,
            org: ChipOrg::X8,
            density: Density::Gb4,
            subarray_rows: 512,
        }
    }

    /// Geometry of the DDR3 4 Gb x8 configuration (Table 2, DDR3
    /// SODIMMs).
    pub fn ddr3_4gb_x8() -> Self {
        Self {
            banks: 8,
            rows_per_bank: 65_536,
            columns: 1024,
            org: ChipOrg::X8,
            density: Density::Gb4,
            subarray_rows: 512,
        }
    }

    /// Number of chips forming the 64-bit rank.
    pub fn chips(self) -> u32 {
        self.org.chips_per_rank()
    }

    /// Bytes stored by one row across the whole rank.
    pub fn row_bytes(self) -> usize {
        (self.columns as usize) * 8
    }

    /// Bytes of one row belonging to a single chip.
    pub fn row_bytes_per_chip(self) -> usize {
        self.row_bytes() / self.chips() as usize
    }

    /// Subarray containing `row`.
    pub fn subarray_of(self, row: RowAddr) -> SubarrayId {
        SubarrayId(row.0 / self.subarray_rows)
    }

    /// Number of subarrays per bank.
    pub fn subarrays(self) -> u32 {
        self.rows_per_bank / self.subarray_rows
    }

    /// Whether `row` is a legal physical/logical row address.
    pub fn contains_row(self, row: RowAddr) -> bool {
        row.0 < self.rows_per_bank
    }

    /// Whether `bank` is a legal bank index.
    pub fn contains_bank(self, bank: BankId) -> bool {
        bank.0 < self.banks
    }

    /// Decomposes a byte offset within a row into `(chip, column,
    /// bit-lane base)`. Lock-step layout: column `c` occupies bytes
    /// `c*8..c*8+8`, byte `j` of the beat belongs to chip `j * chips/8`
    /// rounded into the chip lane (for x8: byte `j` ↔ chip `j`).
    pub fn chip_of_byte(self, byte_offset: usize) -> ChipId {
        let within_beat = (byte_offset % 8) as u32;
        // For x8: one byte per chip per beat. For x4: two chips share a
        // byte (nibbles); attribute the byte to the even chip of the
        // pair. For x16: one chip covers two bytes.
        let chips = self.chips();
        ChipId((within_beat * chips / 8) as u8)
    }

    /// Column address of a byte offset within a row.
    pub fn column_of_byte(self, byte_offset: usize) -> u32 {
        (byte_offset / 8) as u32
    }
}

/// Fully-qualified coordinate of one DRAM cell in a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellCoord {
    /// Bank of the cell.
    pub bank: BankId,
    /// Physical row of the cell.
    pub row: RowAddr,
    /// Byte offset within the row (module-level).
    pub byte: u32,
    /// Bit index within the byte (0 = LSB).
    pub bit: u8,
}

impl CellCoord {
    /// Global bit index of the cell within its row.
    pub fn bit_index(self) -> u64 {
        self.byte as u64 * 8 + self.bit as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_org_widths() {
        assert_eq!(ChipOrg::X4.chips_per_rank(), 16);
        assert_eq!(ChipOrg::X8.chips_per_rank(), 8);
        assert_eq!(ChipOrg::X16.chips_per_rank(), 4);
    }

    #[test]
    fn density_bits() {
        assert_eq!(Density::Gb8.bits(), 2 * Density::Gb4.bits());
    }

    #[test]
    fn ddr4_8gb_row_bytes() {
        let g = DramGeometry::ddr4_8gb_x8();
        assert_eq!(g.row_bytes(), 8192);
        assert_eq!(g.row_bytes_per_chip(), 1024);
        assert_eq!(g.chips(), 8);
    }

    #[test]
    fn subarray_boundaries() {
        let g = DramGeometry::ddr4_8gb_x8();
        assert_eq!(g.subarray_of(RowAddr(0)), SubarrayId(0));
        assert_eq!(g.subarray_of(RowAddr(511)), SubarrayId(0));
        assert_eq!(g.subarray_of(RowAddr(512)), SubarrayId(1));
        assert_eq!(g.subarrays(), 128);
    }

    #[test]
    fn row_offset_saturates() {
        assert_eq!(RowAddr(0).offset(-1), RowAddr(0));
        assert_eq!(RowAddr(5).offset(3), RowAddr(8));
    }

    #[test]
    fn chip_of_byte_x8_layout() {
        let g = DramGeometry::ddr4_8gb_x8();
        assert_eq!(g.chip_of_byte(0), ChipId(0));
        assert_eq!(g.chip_of_byte(7), ChipId(7));
        assert_eq!(g.chip_of_byte(8), ChipId(0));
        assert_eq!(g.column_of_byte(0), 0);
        assert_eq!(g.column_of_byte(8), 1);
        assert_eq!(g.column_of_byte(8191), 1023);
    }

    #[test]
    fn bounds_checks() {
        let g = DramGeometry::ddr4_4gb_x8();
        assert!(g.contains_row(RowAddr(32_767)));
        assert!(!g.contains_row(RowAddr(32_768)));
        assert!(g.contains_bank(BankId(15)));
        assert!(!g.contains_bank(BankId(16)));
    }

    #[test]
    fn manufacturer_roundtrip() {
        for m in Manufacturer::ALL {
            assert_eq!(Manufacturer::ALL[m.index()], m);
            assert!(!m.vendor_name().is_empty());
        }
        assert_eq!(Manufacturer::B.to_string(), "Mfr. B");
    }

    #[test]
    fn cell_bit_index() {
        let c = CellCoord { bank: BankId(0), row: RowAddr(1), byte: 10, bit: 3 };
        assert_eq!(c.bit_index(), 83);
    }
}
