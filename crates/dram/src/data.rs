//! The data patterns of Table 1: colstripe, checkered, rowstripe,
//! their complements, and random — written to the victim row and the
//! eight physically-adjacent rows on each side.

use crate::geometry::RowAddr;
use serde::{Deserialize, Serialize};

/// One of the seven data patterns used by the paper's characterization
/// (Table 1). Fills depend only on the *physical distance parity* from
/// the victim row: rows at even distance (`V ± [0,2,4,6,8]`) get one
/// byte, rows at odd distance (`V ± [1,3,5,7]`) the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternKind {
    /// 0x55 everywhere.
    Colstripe,
    /// 0xAA everywhere (complement of colstripe).
    ColstripeInv,
    /// 0x55 at even distance, 0xAA at odd distance.
    Checkered,
    /// 0xAA at even distance, 0x55 at odd distance.
    CheckeredInv,
    /// 0x00 at even distance, 0xFF at odd distance.
    Rowstripe,
    /// 0xFF at even distance, 0x00 at odd distance.
    RowstripeInv,
    /// Per-row pseudo-random bytes derived from a seed.
    Random,
}

impl PatternKind {
    /// All seven patterns, in Table 1 order.
    pub const ALL: [PatternKind; 7] = [
        PatternKind::Colstripe,
        PatternKind::ColstripeInv,
        PatternKind::Checkered,
        PatternKind::CheckeredInv,
        PatternKind::Rowstripe,
        PatternKind::RowstripeInv,
        PatternKind::Random,
    ];

    /// Table-1 name of the pattern.
    pub fn name(self) -> &'static str {
        match self {
            PatternKind::Colstripe => "colstripe",
            PatternKind::ColstripeInv => "~colstripe",
            PatternKind::Checkered => "checkered",
            PatternKind::CheckeredInv => "~checkered",
            PatternKind::Rowstripe => "rowstripe",
            PatternKind::RowstripeInv => "~rowstripe",
            PatternKind::Random => "random",
        }
    }
}

/// A concrete data pattern: a [`PatternKind`] plus the seed used by the
/// random pattern.
///
/// ```
/// use rh_dram::{DataPattern, PatternKind};
///
/// let p = DataPattern::new(PatternKind::Rowstripe, 0);
/// assert_eq!(p.fill_byte(0), Some(0x00)); // victim row
/// assert_eq!(p.fill_byte(1), Some(0xFF)); // adjacent rows
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DataPattern {
    /// Which Table-1 pattern.
    pub kind: PatternKind,
    /// Seed for the random pattern (ignored by the deterministic ones).
    pub seed: u64,
}

impl DataPattern {
    /// Creates a pattern.
    pub fn new(kind: PatternKind, seed: u64) -> Self {
        Self { kind, seed }
    }

    /// The uniform fill byte of a row at signed `distance` from the
    /// victim, or `None` for the random pattern (which is not uniform).
    pub fn fill_byte(self, distance: i64) -> Option<u8> {
        let even = distance.rem_euclid(2) == 0;
        match self.kind {
            PatternKind::Colstripe => Some(0x55),
            PatternKind::ColstripeInv => Some(0xAA),
            PatternKind::Checkered => Some(if even { 0x55 } else { 0xAA }),
            PatternKind::CheckeredInv => Some(if even { 0xAA } else { 0x55 }),
            PatternKind::Rowstripe => Some(if even { 0x00 } else { 0xFF }),
            PatternKind::RowstripeInv => Some(if even { 0xFF } else { 0x00 }),
            PatternKind::Random => None,
        }
    }

    /// Produces the full row fill for the physical row `row` at signed
    /// `distance` from the victim row.
    pub fn row_fill(self, row: RowAddr, distance: i64, row_bytes: usize) -> Vec<u8> {
        match self.fill_byte(distance) {
            Some(b) => vec![b; row_bytes],
            None => {
                // Deterministic per-row pseudo-random stream (splitmix64).
                let mut state = self
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(u64::from(row.0).wrapping_mul(0xBF58_476D_1CE4_E5B9));
                let mut out = Vec::with_capacity(row_bytes);
                while out.len() < row_bytes {
                    state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    z ^= z >> 31;
                    out.extend_from_slice(&z.to_le_bytes());
                }
                out.truncate(row_bytes);
                out
            }
        }
    }

    /// The bit stored by this pattern at (`row` at `distance`,
    /// byte `byte`, bit `bit`): `true` = 1.
    pub fn bit_at(self, row: RowAddr, distance: i64, byte: usize, bit: u8) -> bool {
        match self.fill_byte(distance) {
            Some(b) => (b >> bit) & 1 == 1,
            None => {
                let fill = self.row_fill(row, distance, byte + 1);
                (fill[byte] >> bit) & 1 == 1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_bytes() {
        let s = 7;
        assert_eq!(DataPattern::new(PatternKind::Colstripe, s).fill_byte(3), Some(0x55));
        assert_eq!(DataPattern::new(PatternKind::Checkered, s).fill_byte(0), Some(0x55));
        assert_eq!(DataPattern::new(PatternKind::Checkered, s).fill_byte(-1), Some(0xAA));
        assert_eq!(DataPattern::new(PatternKind::Rowstripe, s).fill_byte(2), Some(0x00));
        assert_eq!(DataPattern::new(PatternKind::Rowstripe, s).fill_byte(-3), Some(0xFF));
    }

    #[test]
    fn complements_are_complementary() {
        for d in -8i64..=8 {
            let c = DataPattern::new(PatternKind::Checkered, 0).fill_byte(d).unwrap();
            let i = DataPattern::new(PatternKind::CheckeredInv, 0).fill_byte(d).unwrap();
            assert_eq!(c ^ i, 0xFF);
        }
    }

    #[test]
    fn negative_distance_parity() {
        // rem_euclid keeps -2 even and -1 odd.
        let p = DataPattern::new(PatternKind::Rowstripe, 0);
        assert_eq!(p.fill_byte(-2), p.fill_byte(2));
        assert_eq!(p.fill_byte(-1), p.fill_byte(1));
    }

    #[test]
    fn random_is_deterministic_and_row_dependent() {
        let p = DataPattern::new(PatternKind::Random, 42);
        let a = p.row_fill(RowAddr(10), 0, 64);
        let b = p.row_fill(RowAddr(10), 0, 64);
        let c = p.row_fill(RowAddr(11), 0, 64);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 64);
    }

    #[test]
    fn random_differs_across_seeds() {
        let a = DataPattern::new(PatternKind::Random, 1).row_fill(RowAddr(5), 0, 32);
        let b = DataPattern::new(PatternKind::Random, 2).row_fill(RowAddr(5), 0, 32);
        assert_ne!(a, b);
    }

    #[test]
    fn bit_at_matches_row_fill() {
        for kind in PatternKind::ALL {
            let p = DataPattern::new(kind, 9);
            let fill = p.row_fill(RowAddr(3), 1, 16);
            for (byte, fill_byte) in fill.iter().enumerate() {
                for bit in 0..8 {
                    assert_eq!(
                        p.bit_at(RowAddr(3), 1, byte, bit),
                        (fill_byte >> bit) & 1 == 1,
                        "{kind:?} byte {byte} bit {bit}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_has_seven_patterns_with_unique_names() {
        let names: std::collections::HashSet<_> =
            PatternKind::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 7);
    }
}
