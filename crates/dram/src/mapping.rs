//! In-DRAM logical→physical row-address mapping (§4.2).
//!
//! DRAM manufacturers internally scramble memory-controller-visible row
//! addresses; the paper reverse-engineers the scrambling by single-sided
//! hammering. This module provides the ground-truth schemes the device
//! model uses — characterization code must *not* read them directly but
//! recover them through `rh-core`'s mapping reverse engineering
//! (exactly as the paper does).

use crate::geometry::{Manufacturer, RowAddr};
use serde::{Deserialize, Serialize};

/// A bijective logical↔physical row-address mapping.
///
/// All provided schemes are involutions (applying them twice yields the
/// identity), which matches the remapping structures observed in real
/// chips (bit inversions conditioned on higher address bits).
///
/// ```
/// use rh_dram::{RowMapping, RowAddr};
///
/// let m = RowMapping::for_manufacturer(rh_dram::Manufacturer::A);
/// let l = RowAddr(12345);
/// assert_eq!(m.physical_to_logical(m.logical_to_physical(l)), l);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowMapping {
    /// Physical row equals logical row.
    Direct,
    /// When bit `cond_bit` of the logical address is set, the low bits
    /// selected by `mask` are inverted. `mask` must not contain
    /// `cond_bit`, which keeps the transform a bijective involution.
    ConditionalXor {
        /// Address bit that enables the inversion.
        cond_bit: u32,
        /// Bits inverted when enabled.
        mask: u32,
    },
}

impl RowMapping {
    /// The ground-truth mapping scheme of each manufacturer profile.
    pub fn for_manufacturer(mfr: Manufacturer) -> Self {
        match mfr {
            // Mfr. A: 3-bit group inversion conditioned on bit 3.
            Manufacturer::A => RowMapping::ConditionalXor { cond_bit: 3, mask: 0b111 },
            // Mfr. B: pairwise swap conditioned on bit 2.
            Manufacturer::B => RowMapping::ConditionalXor { cond_bit: 2, mask: 0b11 },
            // Mfr. C: sparse inversion conditioned on bit 3.
            Manufacturer::C => RowMapping::ConditionalXor { cond_bit: 3, mask: 0b101 },
            // Mfr. D: no remapping.
            Manufacturer::D => RowMapping::Direct,
        }
    }

    /// Translates a memory-controller-visible row to its in-DRAM
    /// physical row.
    pub fn logical_to_physical(self, row: RowAddr) -> RowAddr {
        match self {
            RowMapping::Direct => row,
            RowMapping::ConditionalXor { cond_bit, mask } => {
                debug_assert_eq!(mask & (1 << cond_bit), 0, "mask must not contain cond_bit");
                if (row.0 >> cond_bit) & 1 == 1 {
                    RowAddr(row.0 ^ mask)
                } else {
                    row
                }
            }
        }
    }

    /// Translates an in-DRAM physical row back to the
    /// memory-controller-visible address.
    pub fn physical_to_logical(self, row: RowAddr) -> RowAddr {
        // All schemes are involutions.
        self.logical_to_physical(row)
    }

    /// The logical rows physically adjacent (distance ±1) to logical
    /// `row`, clipped to `rows` rows per bank. Useful for oracle-side
    /// verification in tests; characterization code derives this
    /// through reverse engineering instead.
    pub fn logical_neighbors(self, row: RowAddr, rows: u32) -> Vec<RowAddr> {
        let phys = self.logical_to_physical(row);
        let mut out = Vec::with_capacity(2);
        if phys.0 > 0 {
            out.push(self.physical_to_logical(RowAddr(phys.0 - 1)));
        }
        if phys.0 + 1 < rows {
            out.push(self.physical_to_logical(RowAddr(phys.0 + 1)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schemes_are_involutions() {
        for mfr in Manufacturer::ALL {
            let m = RowMapping::for_manufacturer(mfr);
            for r in 0..4096u32 {
                let l = RowAddr(r);
                assert_eq!(m.physical_to_logical(m.logical_to_physical(l)), l, "{mfr} row {r}");
            }
        }
    }

    #[test]
    fn all_schemes_are_bijective_on_a_block() {
        for mfr in Manufacturer::ALL {
            let m = RowMapping::for_manufacturer(mfr);
            let mut seen = std::collections::HashSet::new();
            for r in 0..1024u32 {
                seen.insert(m.logical_to_physical(RowAddr(r)).0);
            }
            assert_eq!(seen.len(), 1024, "{mfr} mapping not bijective");
        }
    }

    #[test]
    fn direct_is_identity() {
        assert_eq!(RowMapping::Direct.logical_to_physical(RowAddr(77)), RowAddr(77));
    }

    #[test]
    fn mfr_a_scrambles_some_rows() {
        let m = RowMapping::for_manufacturer(Manufacturer::A);
        // Row 8 has bit 3 set: low three bits inverted.
        assert_eq!(m.logical_to_physical(RowAddr(8)), RowAddr(8 ^ 0b111));
        // Row 7 has bit 3 clear: unchanged.
        assert_eq!(m.logical_to_physical(RowAddr(7)), RowAddr(7));
    }

    #[test]
    fn neighbors_are_physically_adjacent() {
        for mfr in Manufacturer::ALL {
            let m = RowMapping::for_manufacturer(mfr);
            for r in 1..512u32 {
                let row = RowAddr(r);
                for n in m.logical_neighbors(row, 1 << 16) {
                    let d = (m.logical_to_physical(n).0 as i64
                        - m.logical_to_physical(row).0 as i64)
                        .abs();
                    assert_eq!(d, 1, "{mfr}: {n} not adjacent to {row}");
                }
            }
        }
    }

    #[test]
    fn edge_row_has_single_neighbor() {
        let m = RowMapping::Direct;
        assert_eq!(m.logical_neighbors(RowAddr(0), 16).len(), 1);
        assert_eq!(m.logical_neighbors(RowAddr(15), 16).len(), 1);
    }
}
