//! DRAM device model — the hardware substrate of the RowHammer
//! sensitivities reproduction.
//!
//! This crate models everything the paper's testing infrastructure
//! touches on the DRAM side:
//!
//! * [`geometry`] — channels, ranks, chips, banks, subarrays, rows, and
//!   columns, plus the chip organizations of the tested modules
//!   (x4/x8, 4 Gb/8 Gb).
//! * [`timing`] — DDR3-1600 and DDR4-2400 timing parameters (tRAS, tRP,
//!   tRCD, …) with picosecond resolution and the per-standard command
//!   clock granularity (2.5 ns / 1.25 ns) of the SoftMC infrastructure.
//! * [`command`] — the DRAM command set (ACT/PRE/PREA/RD/WR/REF/NOP).
//! * [`bank`] — the per-bank state machine with timing-violation
//!   detection and activation bookkeeping.
//! * [`module`] — a rank of lock-step chips with sparse row storage and
//!   a pluggable [`DisturbanceModel`] hook through which a RowHammer
//!   fault model injects bit flips.
//! * [`mapping`] — in-DRAM logical→physical row-address scrambling
//!   schemes, which characterization code reverse-engineers exactly as
//!   the paper does (§4.2).
//! * [`data`] — the data patterns of Table 1 (colstripe, checkered,
//!   rowstripe, random, and complements).
//! * [`energy`] — IDD-style per-command energy accounting for pricing
//!   attacks and defenses in energy terms.
//! * [`population`] — the tested-module inventory of Tables 2 and 4.
//!
//! # Examples
//!
//! ```
//! use rh_dram::{DramModule, ModuleConfig};
//!
//! let mut module = DramModule::new(ModuleConfig::ddr4_8gb_x8());
//! let bank = rh_dram::BankId(0);
//! let row = rh_dram::RowAddr(42);
//! module.write_row_direct(bank, row, &vec![0xAA; module.row_bytes()]).unwrap();
//! let data = module.read_row_direct(bank, row).unwrap();
//! assert!(data.iter().all(|&b| b == 0xAA));
//! ```
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod bank;
pub mod command;
pub mod data;
pub mod energy;
pub mod error;
pub mod geometry;
pub mod mapping;
pub mod module;
pub mod population;
pub mod timing;

pub use bank::{AggressionStats, Bank, BankState};
pub use command::{Command, TimedCommand};
pub use data::{DataPattern, PatternKind};
pub use energy::{EnergyModel, Picojoules};
pub use error::DramError;
pub use geometry::{
    BankId, CellCoord, ChipId, ChipOrg, Density, DramGeometry, Manufacturer, RowAddr, SubarrayId,
};
pub use mapping::RowMapping;
pub use module::{BitFlip, DisturbanceModel, DramModule, ModuleConfig, NullDisturbance};
pub use population::{ddr4_modules_of, tested_modules, DramStandard, TestedModule};
pub use timing::{Picos, TimingParams, NS};
