//! The DRAM command set (§2.2) and timestamped command traces.

use crate::geometry::{BankId, RowAddr};
use crate::timing::Picos;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A DRAM command as issued by the memory controller.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Command {
    /// Activate (open) `row` in `bank`.
    Act {
        /// Target bank.
        bank: BankId,
        /// Memory-controller-visible (logical) row address.
        row: RowAddr,
    },
    /// Precharge (close) `bank`.
    Pre {
        /// Target bank.
        bank: BankId,
    },
    /// Precharge all banks.
    PreAll,
    /// Read one column burst from the open row of `bank`.
    Rd {
        /// Target bank.
        bank: BankId,
        /// Column address.
        column: u32,
    },
    /// Write one column burst to the open row of `bank`.
    Wr {
        /// Target bank.
        bank: BankId,
        /// Column address.
        column: u32,
        /// The 8-byte beat to store.
        data: [u8; 8],
    },
    /// Refresh (the paper withholds REF during tests to disable TRR,
    /// §4.2; issued only by defense evaluations).
    Ref,
    /// No operation for one command clock.
    Nop,
}

impl Command {
    /// The bank this command addresses, if any.
    pub fn bank(&self) -> Option<BankId> {
        match self {
            Command::Act { bank, .. }
            | Command::Pre { bank }
            | Command::Rd { bank, .. }
            | Command::Wr { bank, .. } => Some(*bank),
            Command::PreAll | Command::Ref | Command::Nop => None,
        }
    }

    /// Short mnemonic as printed in timing diagrams (Fig. 6).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Command::Act { .. } => "ACT",
            Command::Pre { .. } => "PRE",
            Command::PreAll => "PREA",
            Command::Rd { .. } => "RD",
            Command::Wr { .. } => "WR",
            Command::Ref => "REF",
            Command::Nop => "NOP",
        }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Act { bank, row } => write!(f, "ACT(b{},r{})", bank.0, row.0),
            Command::Pre { bank } => write!(f, "PRE(b{})", bank.0),
            Command::PreAll => write!(f, "PREA"),
            Command::Rd { bank, column } => write!(f, "RD(b{},c{column})", bank.0),
            Command::Wr { bank, column, .. } => write!(f, "WR(b{},c{column})", bank.0),
            Command::Ref => write!(f, "REF"),
            Command::Nop => write!(f, "NOP"),
        }
    }
}

/// A command stamped with its issue time, forming command traces like
/// the timing diagram of Fig. 6.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedCommand {
    /// Issue time in picoseconds since trace start.
    pub at: Picos,
    /// The command.
    pub cmd: Command,
}

impl fmt::Display for TimedCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{:>10}ps {}", self.at, self.cmd)
    }
}

/// Renders a command trace as a one-line-per-command timing diagram
/// with inter-command gaps, the textual equivalent of Fig. 6.
pub fn render_trace(trace: &[TimedCommand]) -> String {
    let mut out = String::new();
    let mut prev: Option<Picos> = None;
    for tc in trace {
        let gap = prev.map(|p| tc.at.saturating_sub(p)).unwrap_or(0);
        if prev.is_some() {
            out.push_str(&format!("  | +{:.1} ns\n", gap as f64 / 1000.0));
        }
        out.push_str(&format!("{}\n", tc));
        prev = Some(tc.at);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_extraction() {
        assert_eq!(Command::Act { bank: BankId(3), row: RowAddr(1) }.bank(), Some(BankId(3)));
        assert_eq!(Command::Ref.bank(), None);
        assert_eq!(Command::PreAll.bank(), None);
    }

    #[test]
    fn display_forms() {
        let c = Command::Act { bank: BankId(1), row: RowAddr(7) };
        assert_eq!(c.to_string(), "ACT(b1,r7)");
        assert_eq!(c.mnemonic(), "ACT");
        assert_eq!(Command::Nop.to_string(), "NOP");
    }

    #[test]
    fn trace_rendering_includes_gaps() {
        let trace = vec![
            TimedCommand { at: 0, cmd: Command::Act { bank: BankId(0), row: RowAddr(1) } },
            TimedCommand { at: 34_500, cmd: Command::Pre { bank: BankId(0) } },
        ];
        let s = render_trace(&trace);
        assert!(s.contains("ACT(b0,r1)"));
        assert!(s.contains("+34.5 ns"));
        assert!(s.contains("PRE(b0)"));
    }
}
