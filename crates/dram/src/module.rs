//! The DRAM module: a rank of lock-step chips with sparse row storage,
//! a command interface with timing enforcement, and a pluggable
//! [`DisturbanceModel`] through which a RowHammer fault model observes
//! activations and injects bit flips.

use crate::bank::{Bank, HammerEvent};
use crate::command::{Command, TimedCommand};
use crate::error::DramError;
use crate::geometry::{BankId, DramGeometry, Manufacturer, RowAddr};
use crate::mapping::RowMapping;
use crate::timing::{Picos, TimingParams};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use rh_obs::names;

/// One bit flip within a row, as reported by a disturbance model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitFlip {
    /// Byte offset within the row (module-level).
    pub byte: u32,
    /// Bit within the byte (0 = LSB).
    pub bit: u8,
}

/// The hook through which a RowHammer fault model observes DRAM
/// activity and injects disturbance errors.
///
/// `rh-dram` ships only [`NullDisturbance`]; the calibrated model lives
/// in the `rh-faultmodel` crate. All rows are *physical* rows.
pub trait DisturbanceModel: Send {
    /// Tells the model the geometry of the module it is installed
    /// into. Called once by [`DramModule::with_model`]; models use the
    /// row count to clamp victim accumulation to rows that exist.
    /// The default does nothing (geometry-oblivious models).
    fn configure_geometry(&mut self, _rows_per_bank: u32, _row_bytes: usize) {}

    /// Notifies the model that `row` completed `count` activation
    /// episodes with on-time `t_on` and off-time `t_off` each.
    fn on_hammer(&mut self, bank: BankId, row: RowAddr, count: u64, t_on: Picos, t_off: Picos);

    /// The bit flips to materialize in `row` when its cells are sensed
    /// at time `now` (i.e., on activation), given the currently stored
    /// `data`. `now` lets the model account time-dependent error
    /// mechanisms (retention loss) alongside RowHammer disturbance.
    fn flips_on_activate(&mut self, bank: BankId, row: RowAddr, data: &[u8], now: Picos)
        -> Vec<BitFlip>;

    /// Notifies the model that `row`'s cells were restored to full
    /// charge at time `now` (activation restore, refresh, or an
    /// explicit rewrite): accumulated disturbance on that row is
    /// cleared and its retention clock restarts.
    fn on_restore(&mut self, bank: BankId, row: RowAddr, now: Picos);

    /// Sets the DRAM die temperature seen by the model (°C).
    fn set_temperature(&mut self, celsius: f64);

    /// The DRAM die temperature seen by the model (°C).
    fn temperature(&self) -> f64;
}

/// A disturbance model that never flips bits (an ideal, RowHammer-free
/// device).
#[derive(Debug, Clone, Default)]
pub struct NullDisturbance {
    temperature: f64,
}

impl DisturbanceModel for NullDisturbance {
    fn on_hammer(&mut self, _: BankId, _: RowAddr, _: u64, _: Picos, _: Picos) {}

    fn flips_on_activate(&mut self, _: BankId, _: RowAddr, _: &[u8], _: Picos) -> Vec<BitFlip> {
        Vec::new()
    }

    fn on_restore(&mut self, _: BankId, _: RowAddr, _: Picos) {}

    fn set_temperature(&mut self, celsius: f64) {
        self.temperature = celsius;
    }

    fn temperature(&self) -> f64 {
        self.temperature
    }
}

/// Configuration of a [`DramModule`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModuleConfig {
    /// Module geometry.
    pub geometry: DramGeometry,
    /// Timing parameter set.
    pub timing: TimingParams,
    /// In-DRAM row remapping scheme.
    pub mapping: RowMapping,
    /// Manufacturer of the module's chips.
    pub manufacturer: Manufacturer,
    /// Whether commands violating minimum timings are rejected.
    pub enforce_timings: bool,
}

impl ModuleConfig {
    /// A DDR4 8 Gb x8 module of `mfr` with standard timings.
    pub fn ddr4(mfr: Manufacturer) -> Self {
        let geometry = match mfr {
            Manufacturer::A | Manufacturer::D => DramGeometry::ddr4_8gb_x8(),
            Manufacturer::B | Manufacturer::C => DramGeometry::ddr4_4gb_x8(),
        };
        Self {
            geometry,
            timing: TimingParams::ddr4_2400(),
            mapping: RowMapping::for_manufacturer(mfr),
            manufacturer: mfr,
            enforce_timings: true,
        }
    }

    /// A DDR3 4 Gb x8 module of `mfr` with standard timings.
    pub fn ddr3(mfr: Manufacturer) -> Self {
        Self {
            geometry: DramGeometry::ddr3_4gb_x8(),
            timing: TimingParams::ddr3_1600(),
            mapping: RowMapping::for_manufacturer(mfr),
            manufacturer: mfr,
            enforce_timings: true,
        }
    }

    /// Shorthand for the Mfr. A DDR4 8 Gb x8 configuration.
    pub fn ddr4_8gb_x8() -> Self {
        Self::ddr4(Manufacturer::A)
    }
}

/// A simulated DRAM module (one rank of lock-step chips).
///
/// Rows are stored sparsely: only written rows consume memory, so
/// full-density geometries cost nothing until touched. The module is
/// driven either through the timed command interface ([`issue`]) — used
/// by the SoftMC program executor — or through the direct row-level API
/// (`write_row_direct` / `read_row_direct` / `hammer_direct`) used by
/// bulk experiment fast paths.
///
/// [`issue`]: DramModule::issue
pub struct DramModule {
    cfg: ModuleConfig,
    banks: Vec<Bank>,
    storage: HashMap<(u32, u32), Box<[u8]>>,
    model: Box<dyn DisturbanceModel>,
    now: Picos,
}

impl std::fmt::Debug for DramModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DramModule")
            .field("cfg", &self.cfg)
            .field("rows_stored", &self.storage.len())
            .field("now", &self.now)
            .finish()
    }
}

impl DramModule {
    /// Creates a module with an ideal (never-flipping) disturbance
    /// model.
    pub fn new(cfg: ModuleConfig) -> Self {
        Self::with_model(cfg, Box::new(NullDisturbance::default()))
    }

    /// Creates a module backed by `model`.
    pub fn with_model(cfg: ModuleConfig, mut model: Box<dyn DisturbanceModel>) -> Self {
        let banks = (0..cfg.geometry.banks).map(|i| Bank::new(BankId(i))).collect();
        model.configure_geometry(cfg.geometry.rows_per_bank, cfg.geometry.row_bytes());
        Self { cfg, banks, storage: HashMap::new(), model, now: 0 }
    }

    /// Module configuration.
    pub fn config(&self) -> &ModuleConfig {
        &self.cfg
    }

    /// Module geometry.
    pub fn geometry(&self) -> DramGeometry {
        self.cfg.geometry
    }

    /// Bytes per row across the rank.
    pub fn row_bytes(&self) -> usize {
        self.cfg.geometry.row_bytes()
    }

    /// Current simulated time (ps).
    pub fn now(&self) -> Picos {
        self.now
    }

    /// Mutable access to the installed disturbance model.
    pub fn model_mut(&mut self) -> &mut dyn DisturbanceModel {
        self.model.as_mut()
    }

    /// Shared access to the installed disturbance model.
    pub fn model(&self) -> &dyn DisturbanceModel {
        self.model.as_ref()
    }

    /// Sets the DRAM die temperature (°C) seen by the fault model.
    pub fn set_temperature(&mut self, celsius: f64) {
        self.model.set_temperature(celsius);
    }

    /// Access to a bank's activation statistics.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn bank(&self, bank: BankId) -> &Bank {
        &self.banks[bank.0 as usize]
    }

    fn check_bank(&self, bank: BankId) -> Result<(), DramError> {
        if !self.cfg.geometry.contains_bank(bank) {
            return Err(DramError::BankOutOfRange { bank, banks: self.cfg.geometry.banks });
        }
        Ok(())
    }

    fn check_row(&self, row: RowAddr) -> Result<(), DramError> {
        if !self.cfg.geometry.contains_row(row) {
            return Err(DramError::RowOutOfRange { row, rows: self.cfg.geometry.rows_per_bank });
        }
        Ok(())
    }

    /// Issues one timed command.
    ///
    /// Reads return the 8-byte beat. Time must be monotone
    /// non-decreasing across calls.
    ///
    /// # Errors
    ///
    /// Propagates [`DramError`] for illegal transitions, out-of-range
    /// addresses, and (when `enforce_timings`) timing violations. Reads
    /// of never-written rows yield [`DramError::UninitializedRow`].
    pub fn issue(&mut self, tc: &TimedCommand) -> Result<Option<[u8; 8]>, DramError> {
        let res = self.issue_inner(tc);
        if let Err(DramError::TimingViolation { parameter, .. }) = &res {
            rh_obs::counter(names::DRAM_TIMING_VIOLATION, 1);
            rh_obs::event!(names::DRAM_TIMING_VIOLATION, parameter = *parameter);
        }
        res
    }

    fn issue_inner(&mut self, tc: &TimedCommand) -> Result<Option<[u8; 8]>, DramError> {
        debug_assert!(tc.at >= self.now, "command time went backwards");
        self.now = self.now.max(tc.at);
        match &tc.cmd {
            Command::Act { bank, row } => {
                self.check_bank(*bank)?;
                self.check_row(*row)?;
                let phys = self.cfg.mapping.logical_to_physical(*row);
                let timing = self.cfg.timing;
                let enforce = self.cfg.enforce_timings;
                let event = self.banks[bank.0 as usize].activate(tc.at, phys, &timing, enforce)?;
                if let Some(ev) = event {
                    self.deliver_hammer(*bank, ev);
                }
                self.sense_and_restore(*bank, phys);
                Ok(None)
            }
            Command::Pre { bank } => {
                self.check_bank(*bank)?;
                let timing = self.cfg.timing;
                let enforce = self.cfg.enforce_timings;
                self.banks[bank.0 as usize].precharge(tc.at, &timing, enforce)?;
                Ok(None)
            }
            Command::PreAll => {
                let timing = self.cfg.timing;
                let enforce = self.cfg.enforce_timings;
                for b in &mut self.banks {
                    if b.open_row().is_some() {
                        b.precharge(tc.at, &timing, enforce)?;
                    }
                }
                Ok(None)
            }
            Command::Rd { bank, column } => {
                self.check_bank(*bank)?;
                let timing = self.cfg.timing;
                let enforce = self.cfg.enforce_timings;
                let phys = self.banks[bank.0 as usize].column_access(tc.at, &timing, enforce)?;
                let data = self
                    .storage
                    .get(&(bank.0, phys.0))
                    .ok_or(DramError::UninitializedRow { bank: *bank, row: phys })?;
                let off = (*column as usize) * 8;
                let mut beat = [0u8; 8];
                beat.copy_from_slice(&data[off..off + 8]);
                Ok(Some(beat))
            }
            Command::Wr { bank, column, data } => {
                self.check_bank(*bank)?;
                let timing = self.cfg.timing;
                let enforce = self.cfg.enforce_timings;
                let phys = self.banks[bank.0 as usize].column_access(tc.at, &timing, enforce)?;
                let row_bytes = self.row_bytes();
                let row = self
                    .storage
                    .entry((bank.0, phys.0))
                    .or_insert_with(|| vec![0u8; row_bytes].into_boxed_slice());
                let off = (*column as usize) * 8;
                row[off..off + 8].copy_from_slice(data);
                Ok(None)
            }
            Command::Ref | Command::Nop => Ok(None),
        }
    }

    /// Flushes dangling activation episodes (after the final PRE of a
    /// test) into the disturbance model, attributing them the standard
    /// tRP off-time.
    pub fn flush_hammers(&mut self) {
        let t_rp = self.cfg.timing.t_rp;
        for i in 0..self.banks.len() {
            if let Some(ev) = self.banks[i].flush_pending(t_rp) {
                rh_obs::counter(names::DRAM_HAMMER_FLUSHED, 1);
                self.deliver_hammer(BankId(i as u32), ev);
            }
        }
    }

    fn deliver_hammer(&mut self, bank: BankId, ev: HammerEvent) {
        rh_obs::counter(names::DRAM_HAMMER_EPISODES, 1);
        self.model.on_hammer(bank, ev.row, 1, ev.t_on, ev.t_off);
    }

    /// Senses `phys` row: applies any accumulated disturbance flips to
    /// the stored data and restores the cells (clearing accumulated
    /// disturbance). Mirrors what a row activation does physically.
    fn sense_and_restore(&mut self, bank: BankId, phys: RowAddr) {
        let now = self.now;
        if let Some(data) = self.storage.get_mut(&(bank.0, phys.0)) {
            let flips = self.model.flips_on_activate(bank, phys, data, now);
            if !flips.is_empty() {
                rh_obs::counter(names::DRAM_FLIP, flips.len() as u64);
            }
            for f in flips {
                data[f.byte as usize] ^= 1 << f.bit;
            }
        }
        self.model.on_restore(bank, phys, now);
    }

    // ------------------------------------------------------------------
    // Direct (bulk) interface
    // ------------------------------------------------------------------

    /// Writes a full row, resetting its accumulated disturbance
    /// (equivalent to ACT + WR×columns + PRE, minus the hammering side
    /// effect of the single activation, which is negligible and keeps
    /// initialization side-effect-free).
    ///
    /// # Errors
    ///
    /// [`DramError::BadRowLength`] if `data` is not exactly one row, or
    /// range errors for bad addresses.
    pub fn write_row_direct(
        &mut self,
        bank: BankId,
        row: RowAddr,
        data: &[u8],
    ) -> Result<(), DramError> {
        let _t = rh_obs::timer!(names::DRAM_ROW_WRITE_NS);
        self.check_bank(bank)?;
        self.check_row(row)?;
        if data.len() != self.row_bytes() {
            return Err(DramError::BadRowLength { expected: self.row_bytes(), got: data.len() });
        }
        let phys = self.cfg.mapping.logical_to_physical(row);
        self.storage.insert((bank.0, phys.0), data.to_vec().into_boxed_slice());
        rh_obs::counter(names::DRAM_ROW_WRITE, 1);
        rh_obs::gauge(names::DRAM_ROWS_STORED, self.storage.len() as f64);
        let now = self.now;
        self.model.on_restore(bank, phys, now);
        Ok(())
    }

    /// Reads a full row as an activation would: accumulated disturbance
    /// materializes as bit flips, the row is restored, and the
    /// (possibly corrupted) contents are returned.
    ///
    /// # Errors
    ///
    /// [`DramError::UninitializedRow`] if the row was never written, or
    /// range errors for bad addresses.
    pub fn read_row_direct(&mut self, bank: BankId, row: RowAddr) -> Result<Vec<u8>, DramError> {
        let _t = rh_obs::timer!(names::DRAM_ROW_READ_NS);
        self.check_bank(bank)?;
        self.check_row(row)?;
        let phys = self.cfg.mapping.logical_to_physical(row);
        if !self.storage.contains_key(&(bank.0, phys.0)) {
            return Err(DramError::UninitializedRow { bank, row: phys });
        }
        rh_obs::counter(names::DRAM_ROW_READ, 1);
        self.sense_and_restore(bank, phys);
        Ok(self.storage[&(bank.0, phys.0)].to_vec())
    }

    /// Reads the stored bytes of a row *without* sensing side effects
    /// (no flip materialization, no restore). Oracle-style access for
    /// tests and debugging.
    ///
    /// # Errors
    ///
    /// [`DramError::UninitializedRow`] if the row was never written.
    pub fn peek_row(&self, bank: BankId, row: RowAddr) -> Result<&[u8], DramError> {
        self.check_bank(bank)?;
        self.check_row(row)?;
        let phys = self.cfg.mapping.logical_to_physical(row);
        self.storage
            .get(&(bank.0, phys.0))
            .map(|b| &b[..])
            .ok_or(DramError::UninitializedRow { bank, row: phys })
    }

    /// Bulk fast path: accounts `count` activation episodes of logical
    /// `row` with the given on/off times, without walking the command
    /// interface. Semantically equivalent to `count` ACT/PRE pairs (a
    /// property verified by integration tests).
    ///
    /// # Errors
    ///
    /// Range errors for bad addresses.
    pub fn hammer_direct(
        &mut self,
        bank: BankId,
        row: RowAddr,
        count: u64,
        t_on: Picos,
        t_off: Picos,
    ) -> Result<(), DramError> {
        let _t = rh_obs::timer!(names::DRAM_HAMMER_NS);
        self.check_bank(bank)?;
        self.check_row(row)?;
        let phys = self.cfg.mapping.logical_to_physical(row);
        rh_obs::counter(names::DRAM_HAMMER_EPISODES, count);
        // An activation also senses-and-restores the aggressor row
        // itself, clearing any disturbance accumulated on it.
        self.sense_and_restore(bank, phys);
        self.model.on_hammer(bank, phys, count, t_on, t_off);
        self.banks[bank.0 as usize].record_bulk_activations(phys, count);
        self.now += count * (t_on + t_off);
        Ok(())
    }

    /// Bulk fast path for a double-sided hammer pair: accounts `count`
    /// *alternating* activation episodes of `left` and `right` (the
    /// order `Program::double_sided_hammer` issues them). Unlike two
    /// back-to-back [`hammer_direct`] calls, this keeps the episode
    /// accounting of the interleaved program: each aggressor is
    /// restored on every episode of the other, so the distance-2
    /// disturbance the aggressors deposit on *each other* never
    /// accumulates across the whole burst — only the rows between and
    /// around the pair integrate the full dose.
    ///
    /// [`hammer_direct`]: DramModule::hammer_direct
    ///
    /// # Errors
    ///
    /// Range errors for bad addresses.
    pub fn hammer_pair_direct(
        &mut self,
        bank: BankId,
        left: RowAddr,
        right: RowAddr,
        count: u64,
        t_on: Picos,
        t_off: Picos,
    ) -> Result<(), DramError> {
        let _t = rh_obs::timer!(names::DRAM_HAMMER_NS);
        self.check_bank(bank)?;
        self.check_row(left)?;
        self.check_row(right)?;
        let phys_l = self.cfg.mapping.logical_to_physical(left);
        let phys_r = self.cfg.mapping.logical_to_physical(right);
        rh_obs::counter(names::DRAM_HAMMER_EPISODES, count.saturating_mul(2));
        // The first episode senses and restores both aggressors, just
        // as the program path's opening ACTs do.
        self.sense_and_restore(bank, phys_l);
        self.sense_and_restore(bank, phys_r);
        self.model.on_hammer(bank, phys_l, count, t_on, t_off);
        self.model.on_hammer(bank, phys_r, count, t_on, t_off);
        self.banks[bank.0 as usize].record_bulk_activations(phys_l, count);
        self.banks[bank.0 as usize].record_bulk_activations(phys_r, count);
        self.now += count * 2 * (t_on + t_off);
        // The interleaved program restores each aggressor on every
        // episode, so their mutual distance-2 disturbance never reaches
        // the materialization threshold. Clear it *without* sensing: a
        // sense here would materialize the whole burst's worth at once,
        // which the alternating path never exhibits.
        let now = self.now;
        self.model.on_restore(bank, phys_l, now);
        self.model.on_restore(bank, phys_r, now);
        Ok(())
    }

    /// Refreshes one *physical* row, as a targeted victim refresh from
    /// a RowHammer defense would: the cells are sensed (any disturbance
    /// already past threshold materializes, exactly like a real refresh
    /// locking in an already-flipped value) and restored to full
    /// charge, clearing accumulated disturbance.
    ///
    /// # Errors
    ///
    /// Range errors for bad addresses.
    pub fn refresh_row_physical(&mut self, bank: BankId, phys: RowAddr) -> Result<(), DramError> {
        self.check_bank(bank)?;
        self.check_row(phys)?;
        self.sense_and_restore(bank, phys);
        Ok(())
    }

    /// Drops all stored rows (between tests), leaving disturbance state
    /// to the model's own bookkeeping.
    pub fn clear_storage(&mut self) {
        self.storage.clear();
    }

    /// Number of rows currently materialized in storage.
    pub fn rows_stored(&self) -> usize {
        self.storage.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::NS;

    fn module() -> DramModule {
        DramModule::new(ModuleConfig::ddr4(Manufacturer::D))
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut m = module();
        let data = vec![0x5Au8; m.row_bytes()];
        m.write_row_direct(BankId(2), RowAddr(100), &data).unwrap();
        assert_eq!(m.read_row_direct(BankId(2), RowAddr(100)).unwrap(), data);
    }

    #[test]
    fn wrong_length_write_rejected() {
        let mut m = module();
        let e = m.write_row_direct(BankId(0), RowAddr(0), &[1, 2, 3]).unwrap_err();
        assert!(matches!(e, DramError::BadRowLength { got: 3, .. }));
    }

    #[test]
    fn read_uninitialized_row_fails() {
        let mut m = module();
        assert!(matches!(
            m.read_row_direct(BankId(0), RowAddr(9)),
            Err(DramError::UninitializedRow { .. })
        ));
    }

    #[test]
    fn out_of_range_addresses_rejected() {
        let mut m = module();
        let rows = m.geometry().rows_per_bank;
        assert!(m.write_row_direct(BankId(99), RowAddr(0), &vec![0; m.row_bytes()]).is_err());
        assert!(m
            .write_row_direct(BankId(0), RowAddr(rows), &vec![0u8; m.row_bytes()])
            .is_err());
    }

    #[test]
    fn command_interface_act_wr_rd_pre() {
        let mut m = module();
        let t = m.config().timing;
        let b = BankId(0);
        let mut at = 0;
        m.issue(&TimedCommand { at, cmd: Command::Act { bank: b, row: RowAddr(5) } }).unwrap();
        at += t.t_rcd;
        m.issue(&TimedCommand {
            at,
            cmd: Command::Wr { bank: b, column: 3, data: [9, 8, 7, 6, 5, 4, 3, 2] },
        })
        .unwrap();
        at += t.t_ccd;
        let beat = m
            .issue(&TimedCommand { at, cmd: Command::Rd { bank: b, column: 3 } })
            .unwrap()
            .unwrap();
        assert_eq!(beat, [9, 8, 7, 6, 5, 4, 3, 2]);
        at += t.t_ras;
        m.issue(&TimedCommand { at, cmd: Command::Pre { bank: b } }).unwrap();
    }

    #[test]
    fn timing_violation_surfaces_through_issue() {
        let mut m = module();
        m.issue(&TimedCommand { at: 0, cmd: Command::Act { bank: BankId(0), row: RowAddr(1) } })
            .unwrap();
        let e = m
            .issue(&TimedCommand { at: 5 * NS, cmd: Command::Pre { bank: BankId(0) } })
            .unwrap_err();
        assert!(matches!(e, DramError::TimingViolation { parameter: "tRAS", .. }));
    }

    #[test]
    fn mapping_is_transparent_to_users() {
        // Mfr. A scrambles rows; write/read through logical addresses
        // must still round-trip.
        let mut m = DramModule::new(ModuleConfig::ddr4(Manufacturer::A));
        let data = vec![0x77u8; m.row_bytes()];
        m.write_row_direct(BankId(1), RowAddr(8), &data).unwrap();
        assert_eq!(m.read_row_direct(BankId(1), RowAddr(8)).unwrap(), data);
        // But the physical location differs from the logical address.
        assert!(m.peek_row(BankId(1), RowAddr(8)).is_ok());
    }

    #[test]
    fn hammer_direct_advances_time() {
        let mut m = module();
        let t = m.config().timing;
        m.hammer_direct(BankId(0), RowAddr(4), 1000, t.t_ras, t.t_rp).unwrap();
        assert_eq!(m.now(), 1000 * t.t_rc());
    }

    #[test]
    fn bulk_hammer_paths_account_activation_stats() {
        let mut m = module();
        let t = m.config().timing;
        let b = BankId(0);
        let phys4 = m.config().mapping.logical_to_physical(RowAddr(4));
        let phys6 = m.config().mapping.logical_to_physical(RowAddr(6));
        m.hammer_direct(b, RowAddr(4), 1000, t.t_ras, t.t_rp).unwrap();
        m.hammer_pair_direct(b, RowAddr(4), RowAddr(6), 500, t.t_ras, t.t_rp).unwrap();
        assert_eq!(m.bank(b).stats().count(phys4), 1500);
        assert_eq!(m.bank(b).stats().count(phys6), 500);
        assert_eq!(m.bank(b).stats().total(), 2000);
    }

    #[test]
    fn clear_storage_resets_rows() {
        let mut m = module();
        m.write_row_direct(BankId(0), RowAddr(1), &vec![1u8; m.row_bytes()]).unwrap();
        assert_eq!(m.rows_stored(), 1);
        m.clear_storage();
        assert_eq!(m.rows_stored(), 0);
    }

    #[test]
    fn preall_closes_all_open_banks() {
        let mut m = module();
        let t = m.config().timing;
        m.issue(&TimedCommand { at: 0, cmd: Command::Act { bank: BankId(0), row: RowAddr(1) } })
            .unwrap();
        m.issue(&TimedCommand { at: 100, cmd: Command::Act { bank: BankId(1), row: RowAddr(2) } })
            .unwrap();
        m.issue(&TimedCommand { at: 100 + t.t_ras, cmd: Command::PreAll }).unwrap();
        assert!(m.bank(BankId(0)).open_row().is_none());
        assert!(m.bank(BankId(1)).open_row().is_none());
    }

    #[test]
    fn temperature_plumbs_to_model() {
        let mut m = module();
        m.set_temperature(85.0);
        assert_eq!(m.model().temperature(), 85.0);
    }
}
