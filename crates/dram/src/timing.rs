//! DRAM timing parameters (§2.2 of the paper) with picosecond
//! resolution, and the standard DDR3-1600 / DDR4-2400 parameter sets of
//! the tested modules.

use serde::{Deserialize, Serialize};

/// A duration or point in time, in picoseconds.
pub type Picos = u64;

/// One nanosecond in picoseconds.
pub const NS: Picos = 1_000;

/// The timing parameters relevant to the paper's experiments.
///
/// The paper sweeps *aggressor row active time* by extending tRAS
/// (tAggOn, 34.5→154.5 ns) and *precharged time* by extending tRP
/// (tAggOff, 16.5→40.5 ns); all other parameters stay at their
/// standard values (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimingParams {
    /// Minimum row active time before PRE (ps).
    pub t_ras: Picos,
    /// Minimum precharge time before the next ACT (ps).
    pub t_rp: Picos,
    /// ACT-to-column-command delay (ps).
    pub t_rcd: Picos,
    /// Column-to-column delay (ps).
    pub t_ccd: Picos,
    /// Write recovery time (ps).
    pub t_wr: Picos,
    /// Refresh window: every row must be refreshed once per window (ps).
    pub t_refw: Picos,
    /// Average refresh command interval (ps).
    pub t_refi: Picos,
    /// Command-clock granularity of the testing infrastructure (ps):
    /// 1250 for the DDR4 SoftMC port, 2500 for DDR3 (§4.1).
    pub clock: Picos,
}

impl TimingParams {
    /// DDR4-2400 timing set (matches the DIMMs of Table 4; JESD79-4C).
    pub fn ddr4_2400() -> Self {
        Self {
            t_ras: 34_500, // 34.5 ns: the paper's baseline tAggOn
            t_rp: 16_500,  // 16.5 ns: the paper's baseline tAggOff (tRP ≈ 13.75ns rounded to infra grid)
            t_rcd: 13_750,
            t_ccd: 5_000,
            t_wr: 15_000,
            t_refw: 64_000_000_000, // 64 ms
            t_refi: 7_800_000,      // 7.8 us
            clock: 1_250,
        }
    }

    /// DDR3-1600 timing set (JESD79-3; SODIMMs of Table 4).
    pub fn ddr3_1600() -> Self {
        Self {
            t_ras: 35_000,
            t_rp: 13_750,
            t_rcd: 13_750,
            t_ccd: 5_000,
            t_wr: 15_000,
            t_refw: 64_000_000_000,
            t_refi: 7_800_000,
            clock: 2_500,
        }
    }

    /// The minimum ACT-to-ACT period of a same-bank double-sided hammer
    /// loop: `tRAS + tRP`.
    pub fn t_rc(&self) -> Picos {
        self.t_ras + self.t_rp
    }

    /// Rounds `t` up to the infrastructure's command-clock grid.
    ///
    /// ```
    /// use rh_dram::TimingParams;
    /// let t = TimingParams::ddr4_2400();
    /// assert_eq!(t.quantize(1), 1250);
    /// assert_eq!(t.quantize(1250), 1250);
    /// assert_eq!(t.quantize(1251), 2500);
    /// ```
    pub fn quantize(&self, t: Picos) -> Picos {
        t.div_ceil(self.clock) * self.clock
    }

    /// Maximum number of activations of one aggressor pair inside a
    /// refresh window at the given on/off times (the paper caps HCfirst
    /// search at 512 K hammers so tests stay under 64 ms).
    pub fn max_hammers_in_refw(&self, t_on: Picos, t_off: Picos) -> u64 {
        // One "hammer" is a pair of activations (both aggressor rows).
        self.t_refw / (2 * (t_on + t_off))
    }

    /// Returns a copy with an extended aggressor-on time (the paper's
    /// Aggressor On tests, Fig. 6 middle).
    pub fn with_t_agg_on(mut self, t_on: Picos) -> Self {
        assert!(t_on >= self.t_ras, "tAggOn below the standard tRAS is not tested");
        self.t_ras = t_on;
        self
    }

    /// Returns a copy with an extended aggressor-off time (the paper's
    /// Aggressor Off tests, Fig. 6 bottom).
    pub fn with_t_agg_off(mut self, t_off: Picos) -> Self {
        assert!(t_off >= self.t_rp, "tAggOff below the standard tRP is not tested");
        self.t_rp = t_off;
        self
    }
}

/// The paper's tAggOn sweep points: 34.5 ns to 154.5 ns in 30 ns steps
/// (§6).
pub fn t_agg_on_sweep() -> Vec<Picos> {
    (0..5).map(|i| 34_500 + 30_000 * i).collect()
}

/// The paper's tAggOff sweep points: 16.5 ns to 40.5 ns in 8 ns steps
/// (Figs. 9/10 use 16.5, 24.5, 32.5, 40.5 ns).
pub fn t_agg_off_sweep() -> Vec<Picos> {
    (0..4).map(|i| 16_500 + 8_000 * i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper() {
        let t = TimingParams::ddr4_2400();
        assert_eq!(t.t_ras, 34_500);
        assert_eq!(t.t_rp, 16_500);
        assert_eq!(t.t_rc(), 51_000);
    }

    #[test]
    fn sweep_endpoints_match_paper() {
        let on = t_agg_on_sweep();
        assert_eq!(on.first(), Some(&34_500));
        assert_eq!(on.last(), Some(&154_500));
        assert_eq!(on.len(), 5);
        let off = t_agg_off_sweep();
        assert_eq!(off.first(), Some(&16_500));
        assert_eq!(off.last(), Some(&40_500));
    }

    #[test]
    fn quantize_rounds_up_to_grid() {
        let t = TimingParams::ddr3_1600();
        assert_eq!(t.quantize(0), 0);
        assert_eq!(t.quantize(2_499), 2_500);
        assert_eq!(t.quantize(5_000), 5_000);
    }

    #[test]
    fn refresh_window_fits_512k_hammers() {
        let t = TimingParams::ddr4_2400();
        // 512K hammers must fit in 64 ms at baseline timings (§4.2).
        assert!(t.max_hammers_in_refw(t.t_ras, t.t_rp) >= 512 * 1024);
    }

    #[test]
    #[should_panic(expected = "below the standard tRAS")]
    fn t_agg_on_below_tras_rejected() {
        TimingParams::ddr4_2400().with_t_agg_on(10_000);
    }

    #[test]
    fn extended_timings_apply() {
        let t = TimingParams::ddr4_2400().with_t_agg_on(154_500).with_t_agg_off(40_500);
        assert_eq!(t.t_ras, 154_500);
        assert_eq!(t.t_rp, 40_500);
    }
}
