//! DRAM energy accounting (IDD-style), used to price RowHammer attacks
//! and defenses in energy terms — the paper frames defense overheads as
//! performance, **energy**, and area (§1, §3).
//!
//! Per-command energies follow the usual current-based estimation
//! (Micron TN-41-01 methodology) for a DDR4-2400 x8 device at
//! VDD = 1.2 V, scaled to the whole rank. Absolute joules are
//! approximate; relative comparisons (attack vs benign, defense on vs
//! off) are the point.

use crate::command::Command;
use crate::timing::{Picos, TimingParams};
use serde::{Deserialize, Serialize};

/// Energy in picojoules.
pub type Picojoules = f64;

/// Per-command and background energy coefficients of one rank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy of one ACT+PRE pair (row cycle), pJ.
    pub act_pre: Picojoules,
    /// Energy of one RD burst, pJ.
    pub read: Picojoules,
    /// Energy of one WR burst, pJ.
    pub write: Picojoules,
    /// Energy of refreshing one row (a targeted refresh), pJ.
    pub refresh_row: Picojoules,
    /// Background power while a row is active, pJ per ns.
    pub active_standby_per_ns: Picojoules,
    /// Background power while precharged, pJ per ns.
    pub precharge_standby_per_ns: Picojoules,
}

impl EnergyModel {
    /// DDR4-2400 x8 rank coefficients (eight devices in lock-step).
    pub fn ddr4_2400_x8_rank() -> Self {
        // Per-device estimates scaled by 8 devices:
        // ACT+PRE ≈ 2.2 nJ/rank, RD/WR burst ≈ 1.1/1.2 nJ,
        // row refresh ≈ one row cycle.
        Self {
            act_pre: 2_200.0,
            read: 1_100.0,
            write: 1_250.0,
            refresh_row: 2_200.0,
            active_standby_per_ns: 180.0e-3 * 8.0,
            precharge_standby_per_ns: 120.0e-3 * 8.0,
        }
    }

    /// Energy of one command (the ACT carries the whole row-cycle
    /// energy; PRE is folded in).
    pub fn command_energy(&self, cmd: &Command) -> Picojoules {
        match cmd {
            Command::Act { .. } => self.act_pre,
            Command::Rd { .. } => self.read,
            Command::Wr { .. } => self.write,
            Command::Ref => self.refresh_row,
            Command::Pre { .. } | Command::PreAll | Command::Nop => 0.0,
        }
    }

    /// Background energy over a span with the given active-time share.
    pub fn background(&self, span: Picos, active_share: f64) -> Picojoules {
        let ns = span as f64 / 1000.0;
        ns * (active_share * self.active_standby_per_ns
            + (1.0 - active_share) * self.precharge_standby_per_ns)
    }

    /// Energy of a double-sided hammer campaign: `hammers` pairs of
    /// activations at the given timings, plus background power.
    pub fn hammer_energy(
        &self,
        hammers: u64,
        t_on: Picos,
        t_off: Picos,
        _timing: &TimingParams,
    ) -> Picojoules {
        let acts = 2 * hammers;
        let span = acts * (t_on + t_off);
        let active_share = t_on as f64 / (t_on + t_off) as f64;
        acts as f64 * self.act_pre + self.background(span, active_share)
    }

    /// Energy of `refreshes` targeted victim refreshes.
    pub fn refresh_energy(&self, refreshes: u64) -> Picojoules {
        refreshes as f64 * self.refresh_row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::BankId;
    use crate::geometry::RowAddr;

    fn m() -> EnergyModel {
        EnergyModel::ddr4_2400_x8_rank()
    }

    #[test]
    fn commands_price_correctly() {
        let e = m();
        assert_eq!(e.command_energy(&Command::Act { bank: BankId(0), row: RowAddr(1) }), e.act_pre);
        assert_eq!(e.command_energy(&Command::Pre { bank: BankId(0) }), 0.0);
        assert!(e.command_energy(&Command::Rd { bank: BankId(0), column: 0 }) > 0.0);
        assert_eq!(e.command_energy(&Command::Nop), 0.0);
    }

    #[test]
    fn hammer_energy_scales_linearly() {
        let e = m();
        let t = TimingParams::ddr4_2400();
        let e1 = e.hammer_energy(100_000, t.t_ras, t.t_rp, &t);
        let e2 = e.hammer_energy(200_000, t.t_ras, t.t_rp, &t);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn longer_open_time_costs_more_energy() {
        // The §8.1 Improvement-3 attacker pays for its amplification.
        let e = m();
        let t = TimingParams::ddr4_2400();
        let base = e.hammer_energy(150_000, t.t_ras, t.t_rp, &t);
        let long = e.hammer_energy(150_000, 154_500, t.t_rp, &t);
        assert!(long > base);
    }

    #[test]
    fn a_full_attack_is_millijoule_scale() {
        // Sanity: 150K double-sided hammers ≈ 0.7 mJ of row cycles —
        // the right order of magnitude for DDR4.
        let e = m();
        let t = TimingParams::ddr4_2400();
        let total = e.hammer_energy(150_000, t.t_ras, t.t_rp, &t);
        assert!(total > 0.3e9 && total < 3.0e9, "attack energy {total} pJ");
    }

    #[test]
    fn background_interpolates_between_states() {
        let e = m();
        let lo = e.background(1_000_000, 0.0);
        let hi = e.background(1_000_000, 1.0);
        let mid = e.background(1_000_000, 0.5);
        assert!(lo < mid && mid < hi);
        assert!((mid - (lo + hi) / 2.0).abs() < 1e-9);
    }
}
