//! Per-bank state machine with timing-violation detection and
//! activation bookkeeping.

use crate::error::DramError;
use crate::geometry::{BankId, RowAddr};
use crate::timing::{Picos, TimingParams};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The observable state of one DRAM bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BankState {
    /// All rows closed; ready for ACT after tRP.
    Precharged,
    /// A row is open in the row buffer.
    Active {
        /// The open physical row.
        row: RowAddr,
        /// When it was activated.
        since: Picos,
    },
}

/// A completed activate→precharge episode of one row, produced when the
/// bank is precharged. `t_off` of the *preceding* precharged interval
/// is attributed when the next activation arrives (see
/// [`Bank::activate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClosedActivation {
    /// The physical row that was open.
    pub row: RowAddr,
    /// How long the row stayed open (aggressor on-time).
    pub t_on: Picos,
}

/// Aggregate activation statistics of a bank, per physical row.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggressionStats {
    /// Activation count per physical row.
    pub activations: HashMap<u32, u64>,
}

impl AggressionStats {
    /// Activation count of `row` (0 if never activated).
    pub fn count(&self, row: RowAddr) -> u64 {
        self.activations.get(&row.0).copied().unwrap_or(0)
    }

    /// Total activations across all rows.
    pub fn total(&self) -> u64 {
        self.activations.values().sum()
    }
}

/// One DRAM bank: a row buffer plus the timing state needed to validate
/// command legality.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bank {
    id: BankId,
    state: BankState,
    /// Time of the most recent PRE (bank precharged since then).
    last_pre: Option<Picos>,
    /// Time of the most recent ACT.
    last_act: Option<Picos>,
    /// The episode closed by the most recent PRE, awaiting its
    /// following off-time.
    pending: Option<ClosedActivation>,
    stats: AggressionStats,
}

/// A fully-attributed hammer event: one activation episode of `row`
/// with its on-time and the off-time that followed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HammerEvent {
    /// The hammered (aggressor) physical row.
    pub row: RowAddr,
    /// Aggressor on-time.
    pub t_on: Picos,
    /// Aggressor off-time (bank precharged time after the episode).
    pub t_off: Picos,
}

impl Bank {
    /// Creates a precharged bank.
    pub fn new(id: BankId) -> Self {
        Self {
            id,
            state: BankState::Precharged,
            last_pre: None,
            last_act: None,
            pending: None,
            stats: AggressionStats::default(),
        }
    }

    /// Current bank state.
    pub fn state(&self) -> BankState {
        self.state
    }

    /// The open row, if any.
    pub fn open_row(&self) -> Option<RowAddr> {
        match self.state {
            BankState::Active { row, .. } => Some(row),
            BankState::Precharged => None,
        }
    }

    /// Activation statistics accumulated so far.
    pub fn stats(&self) -> &AggressionStats {
        &self.stats
    }

    /// Clears activation statistics.
    pub fn reset_stats(&mut self) {
        self.stats = AggressionStats::default();
    }

    /// Accounts `count` activation episodes of `row` delivered by a
    /// bulk hammer path that bypasses the per-command state machine.
    /// Keeps [`AggressionStats`] consistent between the program path
    /// (one [`Bank::activate`] per episode) and the direct bulk paths,
    /// so activation-counting consumers (e.g. TRR-style defenses) see
    /// the same ledger either way.
    pub fn record_bulk_activations(&mut self, row: RowAddr, count: u64) {
        if count == 0 {
            return;
        }
        *self.stats.activations.entry(row.0).or_insert(0) += count;
    }

    /// Activates `row` at time `now`.
    ///
    /// Returns the previous episode as a fully-attributed
    /// [`HammerEvent`] once its off-time is known (i.e., now).
    ///
    /// # Errors
    ///
    /// [`DramError::IllegalCommand`] if a row is already open, and (when
    /// `enforce` is set) [`DramError::TimingViolation`] if tRP has not
    /// elapsed since the last precharge.
    pub fn activate(
        &mut self,
        now: Picos,
        row: RowAddr,
        t: &TimingParams,
        enforce: bool,
    ) -> Result<Option<HammerEvent>, DramError> {
        if let BankState::Active { .. } = self.state {
            return Err(DramError::IllegalCommand { what: "ACT while a row is open", bank: self.id });
        }
        let mut event = None;
        if let Some(pre_at) = self.last_pre {
            let observed = now.saturating_sub(pre_at);
            if enforce && observed < t.t_rp {
                return Err(DramError::TimingViolation {
                    parameter: "tRP",
                    required: t.t_rp,
                    observed,
                });
            }
            if let Some(p) = self.pending.take() {
                event = Some(HammerEvent { row: p.row, t_on: p.t_on, t_off: observed });
            }
        }
        self.state = BankState::Active { row, since: now };
        self.last_act = Some(now);
        *self.stats.activations.entry(row.0).or_insert(0) += 1;
        Ok(event)
    }

    /// Precharges the bank at time `now`.
    ///
    /// # Errors
    ///
    /// [`DramError::IllegalCommand`] if no row is open, and (when
    /// `enforce` is set) [`DramError::TimingViolation`] if tRAS has not
    /// elapsed since activation.
    pub fn precharge(
        &mut self,
        now: Picos,
        t: &TimingParams,
        enforce: bool,
    ) -> Result<(), DramError> {
        match self.state {
            BankState::Precharged => {
                Err(DramError::IllegalCommand { what: "PRE on a precharged bank", bank: self.id })
            }
            BankState::Active { row, since } => {
                let observed = now.saturating_sub(since);
                if enforce && observed < t.t_ras {
                    return Err(DramError::TimingViolation {
                        parameter: "tRAS",
                        required: t.t_ras,
                        observed,
                    });
                }
                self.pending = Some(ClosedActivation { row, t_on: observed });
                self.state = BankState::Precharged;
                self.last_pre = Some(now);
                Ok(())
            }
        }
    }

    /// Validates that a column command (RD/WR) is legal at `now` and
    /// returns the open row.
    ///
    /// # Errors
    ///
    /// [`DramError::IllegalCommand`] when the bank is precharged, and
    /// (when `enforce` is set) [`DramError::TimingViolation`] before
    /// tRCD has elapsed.
    pub fn column_access(
        &self,
        now: Picos,
        t: &TimingParams,
        enforce: bool,
    ) -> Result<RowAddr, DramError> {
        match self.state {
            BankState::Precharged => {
                Err(DramError::IllegalCommand { what: "column access on precharged bank", bank: self.id })
            }
            BankState::Active { row, since } => {
                let observed = now.saturating_sub(since);
                if enforce && observed < t.t_rcd {
                    return Err(DramError::TimingViolation {
                        parameter: "tRCD",
                        required: t.t_rcd,
                        observed,
                    });
                }
                Ok(row)
            }
        }
    }

    /// Drains the episode left pending after the final PRE, attributing
    /// it the default off-time `t_off`.
    pub fn flush_pending(&mut self, t_off: Picos) -> Option<HammerEvent> {
        self.pending.take().map(|p| HammerEvent { row: p.row, t_on: p.t_on, t_off })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr4_2400()
    }

    #[test]
    fn act_pre_act_produces_attributed_event() {
        let tp = t();
        let mut b = Bank::new(BankId(0));
        assert_eq!(b.activate(0, RowAddr(5), &tp, true).unwrap(), None);
        b.precharge(tp.t_ras, &tp, true).unwrap();
        let ev = b.activate(tp.t_ras + tp.t_rp, RowAddr(7), &tp, true).unwrap().unwrap();
        assert_eq!(ev.row, RowAddr(5));
        assert_eq!(ev.t_on, tp.t_ras);
        assert_eq!(ev.t_off, tp.t_rp);
    }

    #[test]
    fn double_act_is_illegal() {
        let tp = t();
        let mut b = Bank::new(BankId(1));
        b.activate(0, RowAddr(1), &tp, true).unwrap();
        let e = b.activate(100_000, RowAddr(2), &tp, true).unwrap_err();
        assert!(matches!(e, DramError::IllegalCommand { .. }));
    }

    #[test]
    fn early_pre_violates_tras() {
        let tp = t();
        let mut b = Bank::new(BankId(0));
        b.activate(0, RowAddr(1), &tp, true).unwrap();
        let e = b.precharge(tp.t_ras - 1, &tp, true).unwrap_err();
        assert!(matches!(e, DramError::TimingViolation { parameter: "tRAS", .. }));
    }

    #[test]
    fn early_act_violates_trp() {
        let tp = t();
        let mut b = Bank::new(BankId(0));
        b.activate(0, RowAddr(1), &tp, true).unwrap();
        b.precharge(tp.t_ras, &tp, true).unwrap();
        let e = b.activate(tp.t_ras + tp.t_rp - 1, RowAddr(2), &tp, true).unwrap_err();
        assert!(matches!(e, DramError::TimingViolation { parameter: "tRP", .. }));
    }

    #[test]
    fn unenforced_mode_permits_violations() {
        let tp = t();
        let mut b = Bank::new(BankId(0));
        b.activate(0, RowAddr(1), &tp, false).unwrap();
        b.precharge(1, &tp, false).unwrap();
        let ev = b.activate(2, RowAddr(2), &tp, false).unwrap().unwrap();
        assert_eq!(ev.t_on, 1);
        assert_eq!(ev.t_off, 1);
    }

    #[test]
    fn column_access_needs_open_row_and_trcd() {
        let tp = t();
        let mut b = Bank::new(BankId(0));
        assert!(b.column_access(0, &tp, true).is_err());
        b.activate(0, RowAddr(9), &tp, true).unwrap();
        assert!(matches!(
            b.column_access(tp.t_rcd - 1, &tp, true),
            Err(DramError::TimingViolation { parameter: "tRCD", .. })
        ));
        assert_eq!(b.column_access(tp.t_rcd, &tp, true).unwrap(), RowAddr(9));
    }

    #[test]
    fn stats_count_activations() {
        let tp = t();
        let mut b = Bank::new(BankId(0));
        for i in 0..3u64 {
            let now = i * tp.t_rc();
            b.activate(now, RowAddr(4), &tp, true).unwrap();
            b.precharge(now + tp.t_ras, &tp, true).unwrap();
        }
        assert_eq!(b.stats().count(RowAddr(4)), 3);
        assert_eq!(b.stats().total(), 3);
        b.reset_stats();
        assert_eq!(b.stats().total(), 0);
    }

    #[test]
    fn bulk_activations_merge_with_per_command_stats() {
        let tp = t();
        let mut b = Bank::new(BankId(0));
        b.activate(0, RowAddr(4), &tp, true).unwrap();
        b.precharge(tp.t_ras, &tp, true).unwrap();
        b.record_bulk_activations(RowAddr(4), 150_000);
        b.record_bulk_activations(RowAddr(5), 150_000);
        b.record_bulk_activations(RowAddr(6), 0);
        assert_eq!(b.stats().count(RowAddr(4)), 150_001);
        assert_eq!(b.stats().count(RowAddr(5)), 150_000);
        assert_eq!(b.stats().count(RowAddr(6)), 0);
        assert_eq!(b.stats().total(), 300_001);
    }

    #[test]
    fn flush_pending_attributes_final_episode() {
        let tp = t();
        let mut b = Bank::new(BankId(0));
        b.activate(0, RowAddr(2), &tp, true).unwrap();
        b.precharge(tp.t_ras, &tp, true).unwrap();
        let ev = b.flush_pending(tp.t_rp).unwrap();
        assert_eq!(ev.row, RowAddr(2));
        assert_eq!(ev.t_off, tp.t_rp);
        assert!(b.flush_pending(tp.t_rp).is_none());
    }
}
