//! Error types for DRAM device operations.

use crate::geometry::{BankId, RowAddr};
use crate::timing::Picos;
use std::error::Error;
use std::fmt;

/// Errors returned by DRAM device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DramError {
    /// A command was issued before the minimum timing constraint named
    /// in `parameter` elapsed.
    TimingViolation {
        /// The violated timing parameter (e.g. `"tRAS"`).
        parameter: &'static str,
        /// Required minimum delay.
        required: Picos,
        /// Observed delay.
        observed: Picos,
    },
    /// A command is illegal in the bank's current state (e.g. ACT on an
    /// already-active bank).
    IllegalCommand {
        /// Human-readable description of the offending transition.
        what: &'static str,
        /// Bank the command targeted.
        bank: BankId,
    },
    /// A bank index beyond the module geometry.
    BankOutOfRange {
        /// Offending bank.
        bank: BankId,
        /// Number of banks in the module.
        banks: u32,
    },
    /// A row address beyond the module geometry.
    RowOutOfRange {
        /// Offending row.
        row: RowAddr,
        /// Rows per bank in the module.
        rows: u32,
    },
    /// Row data of the wrong length was supplied to a write.
    BadRowLength {
        /// Expected length in bytes.
        expected: usize,
        /// Supplied length in bytes.
        got: usize,
    },
    /// A read targeted a row that was never written (contents unknown).
    UninitializedRow {
        /// Bank of the read.
        bank: BankId,
        /// Physical row of the read.
        row: RowAddr,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TimingViolation { parameter, required, observed } => write!(
                f,
                "timing violation: {parameter} requires {required} ps, observed {observed} ps"
            ),
            Self::IllegalCommand { what, bank } => {
                write!(f, "illegal command on bank {}: {what}", bank.0)
            }
            Self::BankOutOfRange { bank, banks } => {
                write!(f, "bank {} out of range (module has {banks} banks)", bank.0)
            }
            Self::RowOutOfRange { row, rows } => {
                write!(f, "row {} out of range (bank has {rows} rows)", row.0)
            }
            Self::BadRowLength { expected, got } => {
                write!(f, "row data length {got} does not match row size {expected}")
            }
            Self::UninitializedRow { bank, row } => {
                write!(f, "read of uninitialized row {} in bank {}", row.0, bank.0)
            }
        }
    }
}

impl Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            DramError::TimingViolation { parameter: "tRAS", required: 10, observed: 5 },
            DramError::IllegalCommand { what: "ACT while active", bank: BankId(1) },
            DramError::BankOutOfRange { bank: BankId(99), banks: 16 },
            DramError::RowOutOfRange { row: RowAddr(1 << 20), rows: 65536 },
            DramError::BadRowLength { expected: 8192, got: 3 },
            DramError::UninitializedRow { bank: BankId(0), row: RowAddr(7) },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("timing"));
        }
    }

    #[test]
    fn error_trait_object_usable() {
        let e: Box<dyn Error + Send + Sync> =
            Box::new(DramError::BadRowLength { expected: 1, got: 2 });
        assert!(e.to_string().contains("row data length"));
    }
}
