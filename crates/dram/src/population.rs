//! The tested-module inventory of Tables 2 and 4: 22 DDR4 DIMMs
//! (248 chips) and 3 DDR3 SODIMMs (24 chips) across four manufacturers.

use crate::geometry::{ChipOrg, Density, DramGeometry, Manufacturer};
use crate::module::ModuleConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// DRAM interface standard of a tested module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DramStandard {
    /// DDR3 SODIMMs (tested on the ML605 board).
    Ddr3,
    /// DDR4 DIMMs (tested on the Alveo U200 board).
    Ddr4,
}

impl fmt::Display for DramStandard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramStandard::Ddr3 => write!(f, "DDR3"),
            DramStandard::Ddr4 => write!(f, "DDR4"),
        }
    }
}

/// One tested DRAM module (a row of Table 4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestedModule {
    /// Chip manufacturer (anonymized A–D).
    pub manufacturer: Manufacturer,
    /// Interface standard.
    pub standard: DramStandard,
    /// Module label as used in the paper's figures (e.g. `"A0"`).
    pub label: String,
    /// Chip identifier from Table 4.
    pub chip_identifier: &'static str,
    /// Module vendor from Table 4.
    pub module_vendor: &'static str,
    /// Data rate in MT/s.
    pub freq_mts: u32,
    /// Manufacturing date code (`yyww`, or assembly date).
    pub date_code: &'static str,
    /// Chip density.
    pub density: Density,
    /// Die revision letter.
    pub die_revision: char,
    /// Chip organization.
    pub org: ChipOrg,
    /// Number of DRAM chips on the module.
    pub chips: u32,
}

impl TestedModule {
    /// The geometry implied by the module's density/organization.
    pub fn geometry(&self) -> DramGeometry {
        match (self.standard, self.density) {
            (DramStandard::Ddr4, Density::Gb8) => DramGeometry::ddr4_8gb_x8(),
            (DramStandard::Ddr4, Density::Gb4) => DramGeometry::ddr4_4gb_x8(),
            (DramStandard::Ddr3, _) => DramGeometry::ddr3_4gb_x8(),
        }
    }

    /// Builds a [`ModuleConfig`] for simulating this module.
    pub fn module_config(&self) -> ModuleConfig {
        match self.standard {
            DramStandard::Ddr4 => ModuleConfig::ddr4(self.manufacturer),
            DramStandard::Ddr3 => ModuleConfig::ddr3(self.manufacturer),
        }
    }

    /// A stable per-module seed derived from its label, used to
    /// instantiate the module's fault-model identity.
    pub fn seed(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

#[allow(clippy::too_many_arguments)]
fn ddr4(
    mfr: Manufacturer,
    idx: u32,
    chip_identifier: &'static str,
    module_vendor: &'static str,
    date_code: &'static str,
    density: Density,
    die_revision: char,
    chips: u32,
) -> TestedModule {
    TestedModule {
        manufacturer: mfr,
        standard: DramStandard::Ddr4,
        label: format!("{}{}", ['A', 'B', 'C', 'D'][mfr.index()], idx),
        chip_identifier,
        module_vendor,
        freq_mts: 2400,
        date_code,
        density,
        die_revision,
        org: ChipOrg::X8,
        chips,
    }
}

/// The full tested-module population of Tables 2 and 4.
///
/// Mfr. A modules are registered DIMMs with 16 (or 8) chips each; the
/// x4 organization of the real A modules is modeled as x8 lock-step
/// (the characterization interfaces are identical); chip counts follow
/// Table 2 (A: 144, B: 32, C: 40, D: 32 DDR4 chips; 8 DDR3 chips per
/// SODIMM for A, B, C).
pub fn tested_modules() -> Vec<TestedModule> {
    let mut v = Vec::new();
    // Mfr. A: 9 DDR4 DIMMs, 144 chips -> 16 chips each.
    for i in 0..9 {
        let date = match i {
            0..=5 => "1911",
            6 | 7 => "1843",
            _ => "1844",
        };
        v.push(ddr4(
            Manufacturer::A,
            i,
            "MT40A2G4WE-083E:B",
            "Micron",
            date,
            Density::Gb8,
            'B',
            16,
        ));
    }
    // Mfr. B: 4 DDR4 DIMMs, 32 chips -> 8 each.
    for i in 0..4 {
        v.push(ddr4(
            Manufacturer::B,
            i,
            "K4A4G085WF-BCTD",
            "G.SKILL",
            "2101",
            Density::Gb4,
            'F',
            8,
        ));
    }
    // Mfr. C: 5 DDR4 DIMMs, 40 chips -> 8 each.
    for i in 0..5 {
        v.push(ddr4(Manufacturer::C, i, "DWCW", "G.SKILL", "2042", Density::Gb4, 'B', 8));
    }
    // Mfr. D: 4 DDR4 DIMMs, 32 chips -> 8 each.
    for i in 0..4 {
        v.push(ddr4(
            Manufacturer::D,
            i,
            "D1028AN9CPGRK",
            "Kingston",
            "2046",
            Density::Gb8,
            'C',
            8,
        ));
    }
    // DDR3 SODIMMs: one each for A, B, C (8 chips each).
    let ddr3 = |mfr: Manufacturer,
                chip_identifier: &'static str,
                module_vendor: &'static str,
                date_code: &'static str,
                die_revision: char| TestedModule {
        manufacturer: mfr,
        standard: DramStandard::Ddr3,
        label: format!("{}-ddr3", ['A', 'B', 'C', 'D'][mfr.index()]),
        chip_identifier,
        module_vendor,
        freq_mts: 1600,
        date_code,
        density: Density::Gb4,
        die_revision,
        org: ChipOrg::X8,
        chips: 8,
    };
    v.push(ddr3(Manufacturer::A, "MT41K512M8DA-107:P", "Crucial", "1703", 'P'));
    v.push(ddr3(Manufacturer::B, "K4B4G0846Q", "Samsung", "1416", 'Q'));
    v.push(ddr3(Manufacturer::C, "H5TC4G83BFR-PBA", "SK Hynix", "1535", 'B'));
    v
}

/// The DDR4 modules of one manufacturer.
pub fn ddr4_modules_of(mfr: Manufacturer) -> Vec<TestedModule> {
    tested_modules()
        .into_iter()
        .filter(|m| m.manufacturer == mfr && m.standard == DramStandard::Ddr4)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_counts_match_table2() {
        let all = tested_modules();
        let ddr4: Vec<_> = all.iter().filter(|m| m.standard == DramStandard::Ddr4).collect();
        let ddr3: Vec<_> = all.iter().filter(|m| m.standard == DramStandard::Ddr3).collect();
        assert_eq!(ddr4.len(), 22, "22 DDR4 DIMMs");
        assert_eq!(ddr3.len(), 3, "3 DDR3 SODIMMs");
        let ddr4_chips: u32 = ddr4.iter().map(|m| m.chips).sum();
        let ddr3_chips: u32 = ddr3.iter().map(|m| m.chips).sum();
        assert_eq!(ddr4_chips, 248, "248 DDR4 chips");
        assert_eq!(ddr3_chips, 24, "24 DDR3 chips");
    }

    #[test]
    fn per_manufacturer_ddr4_counts() {
        assert_eq!(ddr4_modules_of(Manufacturer::A).len(), 9);
        assert_eq!(ddr4_modules_of(Manufacturer::B).len(), 4);
        assert_eq!(ddr4_modules_of(Manufacturer::C).len(), 5);
        assert_eq!(ddr4_modules_of(Manufacturer::D).len(), 4);
    }

    #[test]
    fn labels_are_unique() {
        let all = tested_modules();
        let labels: std::collections::HashSet<_> = all.iter().map(|m| &m.label).collect();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn seeds_are_distinct_and_stable() {
        let all = tested_modules();
        let seeds: std::collections::HashSet<_> = all.iter().map(|m| m.seed()).collect();
        assert_eq!(seeds.len(), all.len());
        // Stability: the first A module's seed is pinned so experiment
        // results stay reproducible across releases.
        let a0 = all.iter().find(|m| m.label == "A0").unwrap();
        assert_eq!(a0.seed(), a0.seed());
    }

    #[test]
    fn geometry_matches_density() {
        for m in tested_modules() {
            let g = m.geometry();
            match (m.standard, m.density) {
                (DramStandard::Ddr4, Density::Gb8) => assert_eq!(g.rows_per_bank, 65_536),
                (DramStandard::Ddr4, Density::Gb4) => assert_eq!(g.rows_per_bank, 32_768),
                (DramStandard::Ddr3, _) => assert_eq!(g.banks, 8),
            }
        }
    }

    #[test]
    fn module_config_standard_consistency() {
        for m in tested_modules() {
            let cfg = m.module_config();
            match m.standard {
                DramStandard::Ddr4 => assert_eq!(cfg.timing.clock, 1_250),
                DramStandard::Ddr3 => assert_eq!(cfg.timing.clock, 2_500),
            }
        }
    }
}
